// Package registry enforces the registry contract from DESIGN.md §7:
// outside the packages that own them, built-in schedulers and attention
// policies are reached through their registries (ByName /
// FactoryByName / MustByName), never constructed directly. Direct
// construction bypasses the registration guards and silently forks the
// evaluation set the paper's pinned results iterate.
package registry

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Builtins lists, per owning package, the constructor functions and
// concrete type names that are registry-reachable and therefore
// off-limits to direct construction elsewhere. Parameterized ablation
// constructors (sched.NewAlisaManual, sched.NewPCIeSplit) are absent
// deliberately: they take arguments no registry name can carry.
type Builtins struct {
	// Constructors are forbidden function names in the owning package.
	Constructors []string
	// Types are forbidden composite-literal type names (T{} / &T{}) in
	// the owning package; type references (assertions, declarations)
	// stay legal.
	Types []string
}

// Config maps owning-package import paths to their protected built-ins.
type Config map[string]Builtins

// DefaultConfig protects the paper's evaluation sets: the registered
// scheduler constructors of internal/sched and the registered
// sparse-attention policies of internal/attention.
var DefaultConfig = Config{
	"repro/internal/sched": {
		Constructors: []string{"NewAlisa", "NewFlexGen", "NewVLLM", "NewDeepSpeed", "NewHFAccelerate", "NewGPUOnly", "NewNoCache"},
		Types:        []string{"Alisa", "FlexGen", "VLLM", "DeepSpeed", "HFAccelerate", "GPUOnly", "NoCache"},
	},
	"repro/internal/attention": {
		Constructors: []string{"NewDense", "NewLocal", "NewStrided", "NewSWA", "NewH2O"},
		Types:        []string{"Dense", "Local", "Strided", "SWA", "H2O"},
	},
}

// New returns the analyzer enforcing cfg. The owning packages
// themselves are exempt — the registry's init wiring is where direct
// construction belongs.
func New(cfg Config) *analysis.Analyzer {
	ctors := make(map[string]map[string]bool, len(cfg))
	typs := make(map[string]map[string]bool, len(cfg))
	for path, b := range cfg {
		ctors[path] = nameSet(b.Constructors)
		typs[path] = nameSet(b.Types)
	}
	return &analysis.Analyzer{
		Name: "registry",
		Doc:  "forbid direct construction of registry-reachable built-ins outside their owning package",
		Run: func(pass *analysis.Pass) error {
			return run(pass, ctors, typs)
		},
	}
}

// Analyzer is the production instance enforcing DefaultConfig.
var Analyzer = New(DefaultConfig)

func nameSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass, ctors, typs map[string]map[string]bool) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, ctors)
			case *ast.CompositeLit:
				checkLit(pass, n, typs)
			}
			return true
		})
	}
	return nil
}

// checkCall flags calls to protected constructors from outside the
// owning package.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, ctors map[string]map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	home := fn.Pkg().Path()
	if home == pass.Pkg.Path() || !ctors[home][fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "direct construction of built-in %s.%s bypasses the registry; resolve it by name (ByName / FactoryByName / MustByName)", fn.Pkg().Name(), fn.Name())
}

// checkLit flags composite literals of protected built-in types from
// outside the owning package (covers the &T{...} bypass of the
// constructor ban).
func checkLit(pass *analysis.Pass, lit *ast.CompositeLit, typs map[string]map[string]bool) {
	t := pass.TypesInfo.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	home := named.Obj().Pkg().Path()
	if home == pass.Pkg.Path() || !typs[home][named.Obj().Name()] {
		return
	}
	pass.Reportf(lit.Pos(), "composite literal of built-in %s.%s bypasses the registry; resolve it by name (ByName / FactoryByName / MustByName)", named.Obj().Pkg().Name(), named.Obj().Name())
}
