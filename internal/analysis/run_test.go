package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/determinism"
)

// TestMalformedSuppression pins the suppression contract's teeth: a
// reason-less //alisa:ignore suppresses nothing and is itself reported
// under the "ignore" pseudo-analyzer, and a directive naming the wrong
// analyzer does not cover the finding.
func TestMalformedSuppression(t *testing.T) {
	findings, err := analyzertest.Findings("testdata/suppress", determinism.New(nil))
	if err != nil {
		t.Fatal(err)
	}
	var ignore, determ int
	for _, f := range findings {
		switch f.Analyzer {
		case "ignore":
			ignore++
			if !strings.Contains(f.Message, "requires an analyzer name and a reason") {
				t.Errorf("ignore finding has unexpected message: %s", f)
			}
		case "determinism":
			determ++
			if !strings.Contains(f.Message, "time.Now") {
				t.Errorf("determinism finding has unexpected message: %s", f)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f)
		}
	}
	if ignore != 1 {
		t.Errorf("got %d malformed-suppression findings, want 1", ignore)
	}
	if determ != 2 {
		t.Errorf("got %d determinism findings, want 2 (bare and wrong-analyzer directives must not suppress)", determ)
	}
}

// TestFindingsSorted verifies driver output order is positional — the
// stable order the CI log and the fixture matcher both rely on.
func TestFindingsSorted(t *testing.T) {
	findings, err := analyzertest.Findings("testdata/determinism", determinism.New(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("want several findings from the determinism fixture, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}

// TestFindingString pins the compiler-style rendering the CI gate
// greps.
func TestFindingString(t *testing.T) {
	findings, err := analyzertest.Findings("testdata/suppress", determinism.New(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		s := f.String()
		if !strings.Contains(s, ".go:") || !strings.Contains(s, "["+f.Analyzer+"]") {
			t.Errorf("finding renders as %q; want path:line:col: [analyzer] message", s)
		}
	}
}

// TestMatchScopesPackages verifies Run honors an analyzer's Match: a
// scope rejecting every package yields no findings even over the
// all-positive fixture.
func TestMatchScopesPackages(t *testing.T) {
	none := determinism.New(func(string) bool { return false })
	findings, err := analyzertest.Findings("testdata/suppress", none)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "determinism" {
			t.Errorf("scoped-out analyzer still reported: %s", f)
		}
	}
}
