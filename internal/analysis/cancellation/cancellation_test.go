package cancellation

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

// TestFixtures runs the analyzer with the fixture's own exempt package
// standing in for internal/serve: hand-rolled errors.Is chains and
// direct comparisons are flagged everywhere else, and the
// predicate-defining package stays legal.
func TestFixtures(t *testing.T) {
	a := New([]string{"canfix/exempt"}, "serve.IsCancellation")
	analyzertest.Run(t, "../testdata/cancellation", a)
}

// TestDefaults pins the production configuration: internal/serve is the
// one exempt package, and the diagnostic names the real helper.
func TestDefaults(t *testing.T) {
	if len(DefaultExempt) != 1 || DefaultExempt[0] != "repro/internal/serve" {
		t.Errorf("DefaultExempt = %v, want [repro/internal/serve]", DefaultExempt)
	}
	if DefaultHelper != "serve.IsCancellation" {
		t.Errorf("DefaultHelper = %q", DefaultHelper)
	}
}
