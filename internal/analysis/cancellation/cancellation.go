// Package cancellation enforces the single-predicate rule PR 7's bug
// sweep established: context-cancellation tests go through
// serve.IsCancellation, not hand-rolled errors.Is chains or direct
// comparisons. One predicate means the cluster layer, the session
// layer, and the serve loop can never disagree about what counts as a
// graceful cancel.
package cancellation

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// DefaultExempt is the package allowed to test context errors directly:
// the one defining the helper.
var DefaultExempt = []string{"repro/internal/serve"}

// DefaultHelper is the predicate the diagnostic points at.
const DefaultHelper = "serve.IsCancellation"

// New returns the analyzer with an explicit exempt set and helper name
// (for fixture tests); nil/empty fall back to nothing exempt.
func New(exempt []string, helper string) *analysis.Analyzer {
	ex := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		ex[p] = true
	}
	return &analysis.Analyzer{
		Name: "cancellation",
		Doc:  "forbid hand-rolled context-cancellation tests; use " + helper,
		Run: func(pass *analysis.Pass) error {
			if ex[pass.Pkg.Path()] {
				return nil
			}
			return run(pass, helper)
		},
	}
}

// Analyzer is the production instance: everything outside
// internal/serve uses serve.IsCancellation.
var Analyzer = New(DefaultExempt, DefaultHelper)

func run(pass *analysis.Pass, helper string) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorsIs(pass, n, helper)
			case *ast.BinaryExpr:
				checkComparison(pass, n, helper)
			}
			return true
		})
	}
	return nil
}

// checkErrorsIs flags errors.Is(err, context.Canceled/DeadlineExceeded).
func checkErrorsIs(pass *analysis.Pass, call *ast.CallExpr, helper string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || fn.Name() != "Is" {
		return
	}
	if name := contextErrName(pass, call.Args[1]); name != "" {
		pass.Reportf(call.Pos(), "errors.Is against context.%s duplicates the cancellation predicate; use %s(err)", name, helper)
	}
}

// checkComparison flags err == context.Canceled style comparisons,
// which miss wrapped causes entirely.
func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr, helper string) {
	if op := bin.Op.String(); op != "==" && op != "!=" {
		return
	}
	name := contextErrName(pass, bin.X)
	if name == "" {
		name = contextErrName(pass, bin.Y)
	}
	if name != "" {
		pass.Reportf(bin.Pos(), "comparing against context.%s misses wrapped causes; use %s(err)", name, helper)
	}
}

// contextErrName resolves e to context.Canceled or
// context.DeadlineExceeded, returning the bare name, or "".
func contextErrName(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "context" {
		return ""
	}
	if n := v.Name(); n == "Canceled" || n == "DeadlineExceeded" {
		return n
	}
	return ""
}
