// Package hotpath enforces the serving loop's steady-state memory
// discipline (DESIGN.md §8) on every function annotated with the
// //alisa:hotpath directive: no fmt formatting, no append into a slice
// declared without capacity, no escaping closures, and no interface
// boxing inside loops. The alloc guards (TestServeSteadyStateAllocs and
// friends) measure the outcome; this analyzer names the line that broke
// it before the benchmark has to.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Directive marks a function as part of the allocation-free steady
// state. The annotation is load-bearing: the analyzer checks annotated
// functions, and the inventory test pins the annotated set so it cannot
// silently shrink.
const Directive = "//alisa:hotpath"

// Analyzer checks every annotated function in every package it is run
// over; unannotated code is never flagged.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation idioms (fmt formatting, growing appends, escaping closures, boxing in loops) in //alisa:hotpath functions",
	Run:  run,
}

// IsAnnotated reports whether fn carries the hotpath directive in its
// doc comment. Shared with the inventory test so "annotated" has
// exactly one definition.
func IsAnnotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsAnnotated(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	bare := bareSliceDecls(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkFmt(pass, n)
			checkAppend(pass, n, bare)
		case *ast.FuncLit:
			if capture := capturedLocal(pass, fn, n); capture != "" && !immediatelyCalled(fn, n) {
				pass.Reportf(n.Pos(), "closure captures %q and escapes the hot path; hoist the state or pass it explicitly (captures allocate per call)", capture)
				return false
			}
		case *ast.ForStmt:
			checkLoopBoxing(pass, n.Body)
		case *ast.RangeStmt:
			checkLoopBoxing(pass, n.Body)
		}
		return true
	})
}

// checkFmt flags fmt string formatting; building strings allocates.
// fmt.Errorf stays legal: hot functions construct errors only on cold
// exits, and banning it would just push the same boxing into manual
// wrappers.
func checkFmt(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln":
		pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path; format on the cold side (capture-gated logf, error exits) instead", fn.Name())
	}
}

// bareSliceDecls collects the function's local slice variables declared
// with no capacity — `var xs []T`, `xs := []T{}`, or make with a
// constant-zero length and no capacity — the declarations whose appends
// grow by reallocation.
func bareSliceDecls(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	bare := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				bare[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					mark(id)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !uncappedSliceExpr(pass, n.Rhs[i]) {
					continue
				}
				mark(id)
			}
		}
		return true
	})
	return bare
}

// uncappedSliceExpr reports whether e builds an empty slice with no
// capacity hint.
func uncappedSliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, isSlice := pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		if len(e.Args) != 2 {
			return false // 3-arg make carries a capacity
		}
		tv := pass.TypesInfo.Types[e.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// checkAppend flags appends into capacity-less local slices: steady
// state must append into preallocated or reused scratch.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, bare map[types.Object]bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	if bare[pass.TypesInfo.Uses[target]] {
		pass.Reportf(call.Pos(), "append into %q, declared without capacity, grows by reallocation on the hot path; preallocate (make with capacity) or reuse scratch", target.Name)
	}
}

// capturedLocal returns the name of an enclosing-function local the
// literal captures, or "" when the literal is self-contained.
func capturedLocal(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) string {
	capture := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capture != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal itself.
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			capture = v.Name()
		}
		return true
	})
	return capture
}

// immediatelyCalled reports whether lit is the callee of a direct call
// (func(){...}(), including deferred/go'd forms), which cannot outlive
// the frame.
func immediatelyCalled(fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	called := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == lit {
			called = true
		}
		return !called
	})
	return called
}

// checkLoopBoxing flags concrete values converted to interface types
// inside a loop body — per-iteration boxing the escape analyzer rarely
// saves. Conversions inside return statements are exempt: those are
// cold exits leaving the loop.
func checkLoopBoxing(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			// Cold exit leaving the loop.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// Nested loops are visited by checkFunc's own walk; skipping
			// them here keeps every report single.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if conv, to := asInterfaceConversion(pass, call); conv {
			pass.Reportf(call.Pos(), "conversion to interface %s inside a loop boxes per iteration; hoist it out of the loop", to)
			return true
		}
		checkCallBoxing(pass, call)
		return true
	})
}

// asInterfaceConversion reports whether call is a type conversion to an
// interface type from a concrete type.
func asInterfaceConversion(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false, ""
	}
	if !types.IsInterface(tv.Type) {
		return false, ""
	}
	argT := pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil || types.IsInterface(argT) {
		return false, ""
	}
	return true, tv.Type.String()
}

// checkCallBoxing flags concrete arguments passed to interface
// parameters. Spread calls (f(xs...)) pass an existing slice and box
// nothing new.
func checkCallBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "passing concrete %s to interface parameter boxes per loop iteration; hoist the conversion or keep the call off the hot loop", at.String())
	}
}
