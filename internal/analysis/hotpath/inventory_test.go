package hotpath

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantAnnotated is the agreed hot-path set: the serving loop's
// admission/decode path, the wait-queue heap ops, rolling-window and
// sketch ingestion, the cluster turn loop, the prefix-cache probe/
// insert/evict machinery, and the gateway's per-event fan-out. The test fails in BOTH directions — a lost
// annotation shrinks coverage silently, and a new annotation is a
// contract change that belongs in this list (and in DESIGN.md §12).
var wantAnnotated = []string{
	"internal/cluster.(*Cluster).advance",
	"internal/gateway.(*Bridge).fanout",
	"internal/gateway.(*Subscriber).publish",
	"internal/gateway.(bridgeTap).OnToken",
	"internal/metrics.(*Window).Observe",
	"internal/metrics/sketch.(*Sketch).Observe",
	"internal/metrics/sketch.(*Sketch).compact",
	"internal/metrics/sketch.(*Sketch).compress",
	"internal/serve.(*reqQueue).Pop",
	"internal/serve.(*reqQueue).Push",
	"internal/serve.(*reqQueue).Requeue",
	"internal/serve.(*reqQueue).push",
	"internal/serve.(*reqQueue).siftDown",
	"internal/serve.(*server).admit",
	"internal/serve.(*server).cacheAcquire",
	"internal/serve.(*server).cacheRelease",
	"internal/serve.(*server).cacheRelieve",
	"internal/serve.(*server).complete",
	"internal/serve.(*server).iterate",
	"internal/serve.(*server).preempt",
	"internal/serve.(*server).seqKVBytes",
	"internal/serve.(*server).tryAdmit",
	"internal/serve.(*server).turn",
	"internal/serve/prefix.(*Index).EvictOne",
	"internal/serve/prefix.(*Index).Insert",
	"internal/serve/prefix.(*Index).Lease",
	"internal/serve/prefix.(*Index).Probe",
	"internal/serve/prefix.(*Index).Release",
	"internal/serve/prefix.(*Index).afford",
	"internal/serve/prefix.(*Index).evict",
	"internal/serve/prefix.(*Index).findChild",
	"internal/serve/prefix.(*Index).lruPushTail",
	"internal/serve/prefix.(*Index).lruReplace",
	"internal/serve/prefix.(*Index).lruUnlink",
	"internal/serve/prefix.(*Index).matchedBlocks",
	"internal/serve/prefix.(*Index).split",
	"internal/serve/prefix.cmpBlock",
}

// TestAnnotationInventory scans every non-test source file in the repo
// for //alisa:hotpath directives and pins the annotated set.
func TestAnnotationInventory(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	var got []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !IsAnnotated(fn) {
				continue
			}
			got = append(got, filepath.ToSlash(rel)+"."+funcKey(fn))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)

	want := append([]string(nil), wantAnnotated...)
	sort.Strings(want)
	for _, w := range want {
		if !contains(got, w) {
			t.Errorf("hot-path annotation missing: %s (the set must not silently shrink)", w)
		}
	}
	for _, g := range got {
		if !contains(want, g) {
			t.Errorf("unlisted //alisa:hotpath annotation: %s (add it to wantAnnotated and DESIGN.md §12)", g)
		}
	}
}

// funcKey renders a FuncDecl as (*Recv).Name or Name.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
