package hotpath

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

// TestFixtures runs the analyzer over annotated functions carrying each
// forbidden idiom, their legal twins, and an unannotated function with
// the same bodies (which must stay silent).
func TestFixtures(t *testing.T) {
	analyzertest.Run(t, "../testdata/hotpath", Analyzer)
}
