// Package model provides the transformer substrate: the exact architectural
// configurations of the model families the paper evaluates (OPT, LLaMA,
// Pythia — used for memory-footprint and FLOP accounting in the system
// simulator) and a small runnable decoder with deterministic weights (used
// for numeric experiments: real softmax attention, KV-cache equivalence,
// and quantization-error propagation).
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Config describes a decoder-only transformer at the architectural level.
// Only shape parameters appear here — enough to compute weight bytes, KV
// bytes per token, and per-step FLOPs, which is all the system simulator
// needs to reproduce the paper's throughput results.
type Config struct {
	Name   string // canonical name, e.g. "opt-6.7b"
	Family string // "opt", "llama", "pythia"

	Layers int // transformer decoder layers (l in Table II)
	Hidden int // hidden dimension (h)
	Heads  int // attention heads
	FFN    int // feed-forward inner dimension
	Vocab  int // vocabulary size
	MaxSeq int // maximum context length

	// GatedFFN marks SwiGLU-style feed-forward blocks (LLaMA), which carry
	// three h×ffn projections instead of OPT/Pythia's two.
	GatedFFN bool
}

// ffnMatrices returns how many h×ffn projections the FFN block carries.
func (c Config) ffnMatrices() int64 {
	if c.GatedFFN {
		return 3
	}
	return 2
}

// HeadDim returns the per-head dimension h/heads.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// Params returns the approximate parameter count: token + position
// embeddings, per-layer attention (4h² + 4h), feed-forward (2·h·ffn +
// h + ffn), and the two layer norms.
func (c Config) Params() int64 {
	h := int64(c.Hidden)
	l := int64(c.Layers)
	f := int64(c.FFN)
	embed := int64(c.Vocab)*h + int64(c.MaxSeq)*h
	attn := 4*h*h + 4*h
	ffn := c.ffnMatrices()*h*f + h + f
	norms := 4 * h
	return embed + l*(attn+ffn+norms) + 2*h // final LN
}

// WeightBytes returns the model weight footprint at the given precision.
func (c Config) WeightBytes(bytesPerParam int) int64 {
	return c.Params() * int64(bytesPerParam)
}

// KVBytesPerToken returns the KV-cache bytes one token occupies across all
// layers: 2 tensors (K and V) × layers × hidden × element size. With FP16
// this is the paper's "4·b·l·h bytes" per batch row (§V-A).
func (c Config) KVBytesPerToken(bytesPerElem int) int64 {
	return 2 * int64(c.Layers) * int64(c.Hidden) * int64(bytesPerElem)
}

// KVBytes returns KV bytes for a batch of sequences at the given length.
func (c Config) KVBytes(batch, seqLen, bytesPerElem int) int64 {
	return int64(batch) * int64(seqLen) * c.KVBytesPerToken(bytesPerElem)
}

// ActivationBytes estimates per-step activation memory for a batch: the
// working set of one layer's hidden states and FFN intermediate, double
// buffered.
func (c Config) ActivationBytes(batch, bytesPerElem int) int64 {
	per := int64(c.Hidden) + int64(c.FFN)
	return 2 * int64(batch) * per * int64(bytesPerElem)
}

// DecodeFLOPsPerToken returns the FLOPs to decode one token for one
// sequence at context length ctx: weight GEMMs (2·params-ish via 8h²+4hf
// per layer) plus attention score/value products that grow with context.
func (c Config) DecodeFLOPsPerToken(ctx int) int64 {
	h := int64(c.Hidden)
	f := int64(c.FFN)
	l := int64(c.Layers)
	proj := 2 * (4*h*h + c.ffnMatrices()*h*f) // multiply-accumulate on all weight matrices
	attn := 2 * 2 * h * int64(ctx)            // QKᵀ and AW·V against ctx cached tokens
	return l * (proj + attn)
}

// PrefillFLOPs returns the FLOPs to prefill a prompt of length s for one
// sequence (quadratic attention term included).
func (c Config) PrefillFLOPs(s int) int64 {
	h := int64(c.Hidden)
	f := int64(c.FFN)
	l := int64(c.Layers)
	sl := int64(s)
	proj := 2 * sl * (4*h*h + c.ffnMatrices()*h*f)
	attn := 2 * 2 * h * sl * (sl + 1) / 2 // causal: Σ context lengths
	return l * (proj + attn)
}

// Catalog lists every model configuration the paper evaluates, with the
// published architectural parameters for each family and scale.
var catalog = map[string]Config{
	"opt-6.7b":    {Name: "opt-6.7b", Family: "opt", Layers: 32, Hidden: 4096, Heads: 32, FFN: 16384, Vocab: 50272, MaxSeq: 2048},
	"opt-13b":     {Name: "opt-13b", Family: "opt", Layers: 40, Hidden: 5120, Heads: 40, FFN: 20480, Vocab: 50272, MaxSeq: 2048},
	"opt-30b":     {Name: "opt-30b", Family: "opt", Layers: 48, Hidden: 7168, Heads: 56, FFN: 28672, Vocab: 50272, MaxSeq: 2048},
	"llama-7b":    {Name: "llama-7b", Family: "llama", Layers: 32, Hidden: 4096, Heads: 32, FFN: 11008, Vocab: 32000, MaxSeq: 2048, GatedFFN: true},
	"llama-13b":   {Name: "llama-13b", Family: "llama", Layers: 40, Hidden: 5120, Heads: 40, FFN: 13824, Vocab: 32000, MaxSeq: 2048, GatedFFN: true},
	"llama-33b":   {Name: "llama-33b", Family: "llama", Layers: 60, Hidden: 6656, Heads: 52, FFN: 17920, Vocab: 32000, MaxSeq: 2048, GatedFFN: true},
	"pythia-6.9b": {Name: "pythia-6.9b", Family: "pythia", Layers: 32, Hidden: 4096, Heads: 32, FFN: 16384, Vocab: 50304, MaxSeq: 2048},
	"pythia-12b":  {Name: "pythia-12b", Family: "pythia", Layers: 36, Hidden: 5120, Heads: 40, FFN: 20480, Vocab: 50304, MaxSeq: 2048},
}

// extra holds runtime-registered configurations beyond the built-in
// catalog, guarded for concurrent Register/ByName use.
var extra = struct {
	sync.RWMutex
	m map[string]Config
}{m: make(map[string]Config)}

// Register adds a model configuration to the lookup set, keyed by its
// (case-insensitive) Name — the extension point for architectures beyond
// the paper's catalog. Built-in catalog names cannot be replaced, so the
// pinned experiment results stay trustworthy; re-registering an extension
// name replaces it. Safe for concurrent use with itself and with ByName.
func Register(cfg Config) error {
	key := strings.ToLower(cfg.Name)
	switch {
	case key == "":
		return fmt.Errorf("model: Register with empty Name")
	case cfg.Layers <= 0 || cfg.Hidden <= 0 || cfg.Heads <= 0 || cfg.FFN <= 0 || cfg.Vocab <= 0 || cfg.MaxSeq <= 0:
		return fmt.Errorf("model: Register %q: all shape parameters must be positive: %+v", cfg.Name, cfg)
	case cfg.Hidden%cfg.Heads != 0:
		return fmt.Errorf("model: Register %q: hidden %d not divisible by heads %d", cfg.Name, cfg.Hidden, cfg.Heads)
	}
	if _, builtin := catalog[key]; builtin {
		return fmt.Errorf("model: Register %q: cannot replace a built-in catalog model", cfg.Name)
	}
	extra.Lock()
	extra.m[key] = cfg
	extra.Unlock()
	return nil
}

// ByName returns the configuration for name (case-insensitive): the
// built-in catalog first, then runtime registrations. Safe for concurrent
// use with Register.
func ByName(name string) (Config, error) {
	key := strings.ToLower(name)
	if c, ok := catalog[key]; ok {
		return c, nil
	}
	extra.RLock()
	c, ok := extra.m[key]
	extra.RUnlock()
	if !ok {
		return Config{}, fmt.Errorf("model: unknown model %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return c, nil
}

// MustByName is ByName for static names; it panics on unknown models.
func MustByName(name string) Config {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the built-in catalog's model names in sorted order —
// the paper's evaluation set. Runtime registrations are resolvable
// through ByName and enumerable through Registered but do not join this
// list; the pinned experiment outputs iterate Names.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registered returns every resolvable model name — catalog plus runtime
// registrations — in sorted order.
func Registered() []string {
	names := Names()
	extra.RLock()
	for n := range extra.m {
		names = append(names, n)
	}
	extra.RUnlock()
	sort.Strings(names)
	return names
}
