package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogShapes(t *testing.T) {
	cases := []struct {
		name          string
		layers, heads int
		hidden        int
	}{
		{"opt-6.7b", 32, 32, 4096},
		{"opt-13b", 40, 40, 5120},
		{"opt-30b", 48, 56, 7168},
		{"llama-7b", 32, 32, 4096},
		{"llama-13b", 40, 40, 5120},
		{"llama-33b", 60, 52, 6656},
		{"pythia-6.9b", 32, 32, 4096},
		{"pythia-12b", 36, 40, 5120},
	}
	for _, c := range cases {
		cfg, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Layers != c.layers || cfg.Heads != c.heads || cfg.Hidden != c.hidden {
			t.Errorf("%s: got (l=%d,h=%d,heads=%d)", c.name, cfg.Layers, cfg.Hidden, cfg.Heads)
		}
		if cfg.Hidden%cfg.Heads != 0 {
			t.Errorf("%s: hidden %d not divisible by heads %d", c.name, cfg.Hidden, cfg.Heads)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("gpt-5"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestParamCountsMatchPublishedScale(t *testing.T) {
	// Parameter counts should land within 10% of the published sizes.
	cases := map[string]float64{
		"opt-6.7b":  6.7e9,
		"opt-13b":   13e9,
		"opt-30b":   30e9,
		"llama-7b":  6.7e9,
		"llama-13b": 13e9,
		"llama-33b": 32.5e9,
	}
	for name, want := range cases {
		cfg := MustByName(name)
		got := float64(cfg.Params())
		if ratio := got / want; ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: params %.2fB vs published %.1fB (ratio %.2f)", name, got/1e9, want/1e9, ratio)
		}
	}
}

func TestKVBytesMatchPaperExample(t *testing.T) {
	// Paper §III-A: OPT-13B, seq 512, batch 64, FP16 ⇒ "more than 25 GB"
	// of KV, larger than the ~23 GB weights... weights at FP16.
	cfg := MustByName("opt-13b")
	kv := cfg.KVBytes(64, 512, 2)
	if kvGB := float64(kv) / (1 << 30); kvGB < 24 || kvGB > 27 {
		t.Fatalf("OPT-13B KV at (64,512) = %.1f GB, paper says >25 GB", kvGB)
	}
	w := cfg.WeightBytes(2)
	if wGB := float64(w) / (1 << 30); wGB < 21 || wGB > 26 {
		t.Fatalf("OPT-13B FP16 weights = %.1f GB, paper says ≈23 GB", wGB)
	}
	if kv <= w { // KV should exceed weights at this workload, per the paper
		t.Fatalf("KV (%d) should exceed weights (%d)", kv, w)
	}
}

func TestKVBytesPerTokenFormula(t *testing.T) {
	cfg := MustByName("opt-6.7b")
	// FP16: 4·l·h bytes per token (2 tensors × 2 bytes).
	want := int64(4 * cfg.Layers * cfg.Hidden)
	if got := cfg.KVBytesPerToken(2); got != want {
		t.Fatalf("KVBytesPerToken = %d, want %d", got, want)
	}
}

func TestDecodeFLOPsGrowWithContext(t *testing.T) {
	cfg := MustByName("opt-6.7b")
	if cfg.DecodeFLOPsPerToken(1024) <= cfg.DecodeFLOPsPerToken(64) {
		t.Fatal("decode FLOPs should grow with context length")
	}
}

func TestPrefillFLOPsSuperlinear(t *testing.T) {
	cfg := MustByName("opt-6.7b")
	f1 := cfg.PrefillFLOPs(256)
	f2 := cfg.PrefillFLOPs(512)
	if f2 < 2*f1 {
		t.Fatal("prefill FLOPs should be superlinear in sequence length")
	}
}

// The central correctness invariant: decoding step-by-step with a KV cache
// reproduces the uncached full forward pass exactly (up to accumulation
// noise). This is what "KV caching substitutes computation with memory"
// means in Fig. 2(b).
func TestKVCacheEquivalence(t *testing.T) {
	d := NewDecoder(SmallConfig(), 42)
	rng := rand.New(rand.NewSource(7))
	tokens := make([]int, 12)
	for i := range tokens {
		tokens[i] = rng.Intn(d.Cfg.Vocab)
	}

	st := d.NewState()
	var cached []float32
	for _, tok := range tokens {
		cached = d.DecodeStep(st, tok, nil).Logits
	}
	full := d.ForwardFull(tokens)

	if len(cached) != len(full) {
		t.Fatalf("logit length mismatch %d vs %d", len(cached), len(full))
	}
	for i := range cached {
		if math.Abs(float64(cached[i]-full[i])) > 1e-3 {
			t.Fatalf("logit %d: cached %v vs full %v", i, cached[i], full[i])
		}
	}
}

func TestAttentionWeightsAreCausalDistribution(t *testing.T) {
	d := NewDecoder(SmallConfig(), 1)
	st := d.NewState()
	for step := 0; step < 8; step++ {
		res := d.DecodeStep(st, step%d.Cfg.Vocab, nil)
		for l, w := range res.AttnWeights {
			if len(w) != step+1 {
				t.Fatalf("step %d layer %d: %d weights, want %d", step, l, len(w), step+1)
			}
			var sum float64
			for _, x := range w {
				if x < 0 {
					t.Fatalf("negative attention weight %v", x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("step %d layer %d: weights sum to %v", step, l, sum)
			}
			idx := res.AttnIndices[l]
			if idx[len(idx)-1] != step {
				t.Fatalf("current token index should be %d, got %d", step, idx[len(idx)-1])
			}
		}
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := NewDecoder(SmallConfig(), 5)
	b := NewDecoder(SmallConfig(), 5)
	if !a.Blocks[0].Wq.Equal(b.Blocks[0].Wq, 0) {
		t.Fatal("same seed should produce identical weights")
	}
	c := NewDecoder(SmallConfig(), 6)
	if a.Blocks[0].Wq.Equal(c.Blocks[0].Wq, 0) {
		t.Fatal("different seeds should produce different weights")
	}
}

func TestStateGrowth(t *testing.T) {
	d := NewDecoder(SmallConfig(), 2)
	st := d.NewState()
	for i := 0; i < 5; i++ {
		d.DecodeStep(st, i, nil)
	}
	if st.Len != 5 {
		t.Fatalf("state len = %d, want 5", st.Len)
	}
	for l := range st.K {
		if st.K[l].Rows != 5 || st.V[l].Rows != 5 {
			t.Fatalf("layer %d cache rows K=%d V=%d, want 5", l, st.K[l].Rows, st.V[l].Rows)
		}
	}
}

func TestDecodeStepPanicsOnBadToken(t *testing.T) {
	d := NewDecoder(SmallConfig(), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-vocab token")
		}
	}()
	d.DecodeStep(d.NewState(), d.Cfg.Vocab+1, nil)
}

// restrictor is a Selector that limits attention to the most recent w
// cached tokens — used to verify the selector plumbing end to end.
type restrictor struct {
	w        int
	observed int
}

func (r *restrictor) Select(_, n int) []int {
	start := n - r.w
	if start < 0 {
		start = 0
	}
	idx := make([]int, 0, n-start)
	for i := start; i < n; i++ {
		idx = append(idx, i)
	}
	return idx
}

func (r *restrictor) Observe(_ int, indices []int, weights []float64) {
	r.observed++
	if len(indices) != len(weights) {
		panic("observe length mismatch")
	}
}

func TestSelectorRestrictsAttention(t *testing.T) {
	d := NewDecoder(SmallConfig(), 4)
	sel := &restrictor{w: 2}
	st := d.NewState()
	var res *StepResult
	for i := 0; i < 6; i++ {
		res = d.DecodeStep(st, i, sel)
	}
	// At step 5 the policy allows cache indices {3,4} plus self = 3 positions.
	for l := range res.AttnWeights {
		if len(res.AttnWeights[l]) != 3 {
			t.Fatalf("layer %d attended %d positions, want 3", l, len(res.AttnWeights[l]))
		}
	}
	if sel.observed != 6*d.Cfg.Layers {
		t.Fatalf("observe called %d times, want %d", sel.observed, 6*d.Cfg.Layers)
	}
}

// Property: the KV-cached decode path is deterministic — identical token
// streams produce identical logits.
func TestDecodeDeterministicProperty(t *testing.T) {
	d := NewDecoder(SmallConfig(), 11)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tokens := make([]int, n)
		for i := range tokens {
			tokens[i] = rng.Intn(d.Cfg.Vocab)
		}
		run := func() []float32 {
			st := d.NewState()
			var out []float32
			for _, tok := range tokens {
				out = d.DecodeStep(st, tok, nil).Logits
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
