package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Decoder is a runnable decoder-only transformer with deterministic
// synthetic weights. It is deliberately small — the numeric experiments
// need real softmax attention, KV caching, and quantization-error
// propagation, not billions of parameters; the full-scale configs feed the
// analytic simulator instead.
type Decoder struct {
	Cfg    Config
	Embed  *tensor.Matrix // vocab × hidden token embeddings (tied output head)
	Pos    *tensor.Matrix // maxseq × hidden position embeddings
	Blocks []*Block
	FinalG []float32 // final layer-norm gain
	FinalB []float32 // final layer-norm bias
}

// Block holds one transformer layer's weights.
type Block struct {
	Wq, Wk, Wv, Wo *tensor.Matrix // hidden × hidden
	W1             *tensor.Matrix // hidden × ffn
	W2             *tensor.Matrix // ffn × hidden
	LN1G, LN1B     []float32
	LN2G, LN2B     []float32
}

// NewDecoder builds a decoder with the given shape and deterministic
// weights derived from seed. Hidden must be divisible by heads.
func NewDecoder(cfg Config, seed int64) *Decoder {
	if cfg.Hidden%cfg.Heads != 0 {
		panic(fmt.Sprintf("model: hidden %d not divisible by heads %d", cfg.Hidden, cfg.Heads))
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Decoder{
		Cfg:    cfg,
		Embed:  randMatrix(rng, cfg.Vocab, cfg.Hidden, 1),
		Pos:    randMatrix(rng, cfg.MaxSeq, cfg.Hidden, 0.5),
		FinalG: ones(cfg.Hidden),
		FinalB: make([]float32, cfg.Hidden),
	}
	for range make([]struct{}, cfg.Layers) {
		scale := 1 / math.Sqrt(float64(cfg.Hidden))
		ffnScale := 1 / math.Sqrt(float64(cfg.FFN))
		d.Blocks = append(d.Blocks, &Block{
			Wq:   randMatrix(rng, cfg.Hidden, cfg.Hidden, scale),
			Wk:   randMatrix(rng, cfg.Hidden, cfg.Hidden, scale),
			Wv:   randMatrix(rng, cfg.Hidden, cfg.Hidden, scale),
			Wo:   randMatrix(rng, cfg.Hidden, cfg.Hidden, scale),
			W1:   randMatrix(rng, cfg.Hidden, cfg.FFN, scale),
			W2:   randMatrix(rng, cfg.FFN, cfg.Hidden, ffnScale),
			LN1G: ones(cfg.Hidden), LN1B: make([]float32, cfg.Hidden),
			LN2G: ones(cfg.Hidden), LN2B: make([]float32, cfg.Hidden),
		})
	}
	return d
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * scale)
	}
	return m
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// State is the per-sequence KV cache: one K and one V matrix per layer,
// rows are tokens in generation order.
type State struct {
	K, V []*tensor.Matrix
	Len  int
}

// NewState returns an empty KV cache for the decoder.
func (d *Decoder) NewState() *State {
	s := &State{
		K: make([]*tensor.Matrix, d.Cfg.Layers),
		V: make([]*tensor.Matrix, d.Cfg.Layers),
	}
	for l := range s.K {
		s.K[l] = tensor.New(0, d.Cfg.Hidden)
		s.V[l] = tensor.New(0, d.Cfg.Hidden)
	}
	return s
}

// Selector restricts which cached positions a decode step attends to.
// Given the layer and the number of cached tokens n (excluding the current
// token), it returns the cache indices to attend over; the current token
// always attends to itself in addition. A nil Selector is dense attention.
type Selector interface {
	Select(layer, n int) []int
	// Observe receives the post-softmax attention weights for this step,
	// averaged across heads, aligned with the returned indices plus the
	// current token appended last.
	Observe(layer int, indices []int, weights []float64)
}

// StepResult carries the outputs of one decode step.
type StepResult struct {
	Hidden []float32 // final hidden state of the new token
	Logits []float32 // vocabulary logits (tied embedding head)
	// AttnWeights[layer] are the head-averaged post-softmax weights over
	// the attended positions (selected cache indices then current token).
	AttnWeights [][]float64
	// AttnIndices[layer] are the cache indices each weight refers to, with
	// State.Len (the current token's new index) appended last.
	AttnIndices [][]int
}

// DecodeStep runs one autoregressive step: embeds token at position
// st.Len, attends over the (optionally policy-restricted) KV cache, appends
// the new token's K/V to the cache, and returns hidden state and logits.
func (d *Decoder) DecodeStep(st *State, token int, sel Selector) *StepResult {
	if token < 0 || token >= d.Cfg.Vocab {
		panic(fmt.Sprintf("model: token %d out of vocab %d", token, d.Cfg.Vocab))
	}
	if st.Len >= d.Cfg.MaxSeq {
		panic(fmt.Sprintf("model: sequence length %d exceeds max %d", st.Len, d.Cfg.MaxSeq))
	}
	h := make([]float32, d.Cfg.Hidden)
	copy(h, d.Embed.Row(token))
	pos := d.Pos.Row(st.Len)
	for i := range h {
		h[i] += pos[i]
	}

	res := &StepResult{
		AttnWeights: make([][]float64, d.Cfg.Layers),
		AttnIndices: make([][]int, d.Cfg.Layers),
	}

	for l, blk := range d.Blocks {
		normed := append([]float32(nil), h...)
		tensor.LayerNorm(normed, blk.LN1G, blk.LN1B, 1e-5)
		x := tensor.FromSlice(1, d.Cfg.Hidden, normed)

		q := tensor.MatMul(x, blk.Wq)
		k := tensor.MatMul(x, blk.Wk)
		v := tensor.MatMul(x, blk.Wv)

		// Select cached positions for this layer.
		n := st.K[l].Rows
		var idx []int
		if sel != nil {
			idx = sel.Select(l, n)
		} else {
			idx = allIndices(n)
		}
		keys := tensor.GatherRows(st.K[l], idx)
		vals := tensor.GatherRows(st.V[l], idx)
		keys = tensor.ConcatRows(keys, k)
		vals = tensor.ConcatRows(vals, v)

		attnOut, avgW := d.multiHeadAttend(q.Row(0), keys, vals)
		proj := tensor.MatMul(tensor.FromSlice(1, d.Cfg.Hidden, attnOut), blk.Wo)
		for i := range h {
			h[i] += proj.Data[i]
		}

		indices := append(append([]int(nil), idx...), st.Len)
		res.AttnWeights[l] = avgW
		res.AttnIndices[l] = indices
		if sel != nil {
			sel.Observe(l, indices, avgW)
		}

		// Append the new token's K/V to the cache.
		st.K[l] = st.K[l].AppendRow(k.Row(0))
		st.V[l] = st.V[l].AppendRow(v.Row(0))

		// Feed-forward with pre-norm residual.
		normed2 := append([]float32(nil), h...)
		tensor.LayerNorm(normed2, blk.LN2G, blk.LN2B, 1e-5)
		f := tensor.MatMul(tensor.FromSlice(1, d.Cfg.Hidden, normed2), blk.W1)
		relu(f.Data)
		f = tensor.MatMul(f, blk.W2)
		for i := range h {
			h[i] += f.Data[i]
		}
	}
	st.Len++

	final := append([]float32(nil), h...)
	tensor.LayerNorm(final, d.FinalG, d.FinalB, 1e-5)
	res.Hidden = final
	logits := tensor.MatMulT(tensor.FromSlice(1, d.Cfg.Hidden, final), d.Embed)
	res.Logits = logits.Data
	return res
}

// multiHeadAttend computes attention of the single query row against keys
// and values (both t×hidden), returning the hidden-sized context vector and
// the head-averaged attention weights (length t).
func (d *Decoder) multiHeadAttend(query []float32, keys, vals *tensor.Matrix) ([]float32, []float64) {
	heads := d.Cfg.Heads
	dh := d.Cfg.HeadDim()
	t := keys.Rows
	out := make([]float32, d.Cfg.Hidden)
	avg := make([]float64, t)
	scale := 1 / math.Sqrt(float64(dh))
	scores := make([]float32, t)
	for hd := 0; hd < heads; hd++ {
		lo := hd * dh
		qh := query[lo : lo+dh]
		for i := 0; i < t; i++ {
			krow := keys.Row(i)[lo : lo+dh]
			scores[i] = float32(tensor.Dot(qh, krow) * scale)
		}
		tensor.SoftmaxInPlace(scores)
		for i := 0; i < t; i++ {
			w := float64(scores[i])
			avg[i] += w
			vrow := vals.Row(i)[lo : lo+dh]
			for j := 0; j < dh; j++ {
				out[lo+j] += float32(w * float64(vrow[j]))
			}
		}
	}
	inv := 1 / float64(heads)
	for i := range avg {
		avg[i] *= inv
	}
	return out, avg
}

func relu(v []float32) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// ForwardFull runs the whole sequence through the decoder without KV
// caching — every step recomputes attention over the full prefix. It
// returns the logits of the final position and serves as the ground truth
// the KV-cached path must match.
func (d *Decoder) ForwardFull(tokens []int) []float32 {
	s := len(tokens)
	if s == 0 {
		panic("model: empty sequence")
	}
	x := tensor.New(s, d.Cfg.Hidden)
	for i, tok := range tokens {
		copy(x.Row(i), d.Embed.Row(tok))
		pos := d.Pos.Row(i)
		row := x.Row(i)
		for j := range row {
			row[j] += pos[j]
		}
	}

	dh := d.Cfg.HeadDim()
	scale := 1 / math.Sqrt(float64(dh))
	for _, blk := range d.Blocks {
		normed := x.Clone()
		for i := 0; i < s; i++ {
			tensor.LayerNorm(normed.Row(i), blk.LN1G, blk.LN1B, 1e-5)
		}
		q := tensor.MatMul(normed, blk.Wq)
		k := tensor.MatMul(normed, blk.Wk)
		v := tensor.MatMul(normed, blk.Wv)

		attnOut := tensor.New(s, d.Cfg.Hidden)
		scores := make([]float32, s)
		for hd := 0; hd < d.Cfg.Heads; hd++ {
			lo := hd * dh
			for i := 0; i < s; i++ {
				qh := q.Row(i)[lo : lo+dh]
				for j := 0; j <= i; j++ {
					scores[j] = float32(tensor.Dot(qh, k.Row(j)[lo:lo+dh]) * scale)
				}
				tensor.SoftmaxInPlace(scores[:i+1])
				orow := attnOut.Row(i)
				for j := 0; j <= i; j++ {
					w := float64(scores[j])
					vrow := v.Row(j)[lo : lo+dh]
					for c := 0; c < dh; c++ {
						orow[lo+c] += float32(w * float64(vrow[c]))
					}
				}
			}
		}
		proj := tensor.MatMul(attnOut, blk.Wo)
		x.Add(proj)

		normed2 := x.Clone()
		for i := 0; i < s; i++ {
			tensor.LayerNorm(normed2.Row(i), blk.LN2G, blk.LN2B, 1e-5)
		}
		f := tensor.MatMul(normed2, blk.W1)
		relu(f.Data)
		f = tensor.MatMul(f, blk.W2)
		x.Add(f)
	}

	final := append([]float32(nil), x.Row(s-1)...)
	tensor.LayerNorm(final, d.FinalG, d.FinalB, 1e-5)
	logits := tensor.MatMulT(tensor.FromSlice(1, d.Cfg.Hidden, final), d.Embed)
	return logits.Data
}

// SmallConfig returns a laptop-scale decoder config suitable for the
// numeric experiments and tests.
func SmallConfig() Config {
	return Config{
		Name: "tiny-decoder", Family: "synthetic",
		Layers: 4, Hidden: 64, Heads: 4, FFN: 128, Vocab: 96, MaxSeq: 256,
	}
}
