package alisa

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run `go test -bench=. -benchmem`), reporting the
// headline quantity of each artefact as a custom benchmark metric so
// regressions in the reproduced shapes show up in benchstat diffs.
//
// Table/figure → benchmark index (see DESIGN.md §3 for workloads):
//
//	Table I   BenchmarkTable1
//	Fig. 1    BenchmarkFig1_Breakdown         (slowdown_100cpu ×)
//	Fig. 2(c) BenchmarkFig2c_KVCaching        (uncached_over_cached ×)
//	Fig. 3    BenchmarkFig3_Sparsity          (sparsity_opt30b %)
//	Fig. 4    BenchmarkFig4_Spearman          (rho_swa)
//	Fig. 5    BenchmarkFig5_AttentionMaps
//	Fig. 8    BenchmarkFig8_Accuracy          (swa_ppl_regression_80 %)
//	Fig. 9    BenchmarkFig9_Throughput        (speedup_vs_flexgen ×)
//	Fig. 10   BenchmarkFig10_AttainableSparsity (attn_sparsity_80 %)
//	Fig. 11   BenchmarkFig11_AttnBreakdown    (sparse_over_dense_time)
//	Fig. 12a  BenchmarkFig12a_Phases          (alisa_over_flexgen ×)
//	Fig. 12b  BenchmarkFig12b_Recompute       (recompute_speedup ×)
//	Fig. 12c  BenchmarkFig12c_Ablation        (full_stack_gain ×)

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/quant"
	"repro/internal/sched"
	"repro/internal/tensor"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_Breakdown(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var base, full float64
	for _, row := range last.Rows {
		if row.Workload.Name != "w1" {
			continue
		}
		switch row.Placement {
		case "GPU only":
			base = row.TotalSeconds
		case "100% CPU":
			full = row.TotalSeconds
		}
	}
	b.ReportMetric(full/base, "slowdown_100cpu")
}

func BenchmarkFig2c_KVCaching(b *testing.B) {
	var last *experiments.Fig2cResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2c()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	end := last.Points[len(last.Points)-1]
	b.ReportMetric(end.UncachedSeconds/end.CachedSeconds, "uncached_over_cached")
}

func BenchmarkFig3_Sparsity(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Series[2].MeanSparsity*100, "sparsity_opt30b_%")
}

func BenchmarkFig4_Spearman(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, s := range last.Series {
		if s.Policy == "swa" {
			b.ReportMetric(s.Spearman, "rho_swa")
		}
	}
}

func BenchmarkFig5_AttentionMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Accuracy(b *testing.B) {
	cfg := experiments.DefaultFig8Config()
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	dense, _ := last.Cell("opt-6.7b", "wikitext-2", "dense", 0.8)
	swa, _ := last.Cell("opt-6.7b", "wikitext-2", "swa", 0.8)
	b.ReportMetric((swa.Metric/dense.Metric-1)*100, "swa_ppl_regression_80_%")
}

func BenchmarkFig9_Throughput(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup("opt-6.7b", 64, "flexgen"), "speedup_vs_flexgen")
	b.ReportMetric(last.Speedup("opt-6.7b", 64, "vllm"), "speedup_vs_vllm")
}

func BenchmarkFig10_AttainableSparsity(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, p := range last.Points {
		if p.Model == "opt-6.7b" && p.KVSparsity == 0.8 {
			b.ReportMetric(p.AttentionSparsity*100, "attn_sparsity_80_%")
		}
	}
}

func BenchmarkFig11_AttnBreakdown(b *testing.B) {
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var dense, sparse float64
	for _, row := range last.Rows {
		if row.Model != "opt-6.7b" {
			continue
		}
		switch row.KVSparsity {
		case 0:
			dense = row.Breakdown.Total()
		case 0.8:
			sparse = row.Breakdown.Total()
		}
	}
	b.ReportMetric(sparse/dense, "sparse_over_dense_time")
}

func BenchmarkFig12a_Phases(b *testing.B) {
	var last *experiments.Fig12aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var flexgen, alisa80 float64
	for _, row := range last.Rows {
		if row.System == "flexgen" {
			flexgen = row.Total
		}
		if row.System == "alisa" && row.KVSparsity == 0.8 {
			alisa80 = row.Total
		}
	}
	b.ReportMetric(flexgen/alisa80, "alisa_over_flexgen")
}

func BenchmarkFig12b_Recompute(b *testing.B) {
	var last *experiments.Fig12bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].Speedup, "recompute_speedup")
}

func BenchmarkFig12c_Ablation(b *testing.B) {
	var last *experiments.Fig12cResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12c()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var fg, full float64
	for _, row := range last.Rows {
		if row.KVSparsity == 0.8 {
			switch row.Variant {
			case "flexgen":
				fg = row.Throughput
			case "+int8":
				full = row.Throughput
			}
		}
	}
	b.ReportMetric(full/fg, "full_stack_gain")
}

// --- micro-benchmarks of the core building blocks ---

func BenchmarkSWASelect(b *testing.B) {
	pol := attention.NewSWA(0.2, 1)
	rng := rand.New(rand.NewSource(1))
	// Warm the policy with observation history.
	for step := 1; step < 512; step++ {
		sel := pol.Select(0, step)
		w := make([]float64, len(sel)+1)
		for i := range w {
			w[i] = rng.Float64()
		}
		pol.Observe(0, append(sel, step), w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Select(0, 512)
	}
}

func BenchmarkDecoderStep(b *testing.B) {
	d := model.NewDecoder(model.SmallConfig(), 1)
	st := d.NewState()
	for i := 0; i < 64; i++ {
		d.DecodeStep(st, i%d.Cfg.Vocab, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-use a fresh state periodically to bound cache growth.
		if st.Len >= d.Cfg.MaxSeq-1 {
			st = d.NewState()
		}
		d.DecodeStep(st, i%d.Cfg.Vocab, nil)
	}
}

func BenchmarkQuantizeINT8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := tensor.New(256, 64)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(len(m.Data)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Quantize(m, 8)
	}
}

func BenchmarkMatMulT(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q := tensor.New(1, 256)
	k := tensor.New(512, 256)
	for i := range q.Data {
		q.Data[i] = float32(rng.NormFloat64())
	}
	for i := range k.Data {
		k.Data[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulT(q, k)
	}
}

// BenchmarkOracleEvaluate measures the parallel scratch-reusing accuracy
// hot path; BenchmarkOracleEvaluateSequential measures the retained
// per-step-allocating reference. Comparing their allocs/op (each op is
// evalSteps decode steps over evalLayers layers) shows the allocation
// reduction the hot path buys — the reference allocates several slices
// per step per layer, the hot path a constant amount per run.
const (
	evalSteps  = 192
	evalLayers = 4
)

func BenchmarkOracleEvaluate(b *testing.B) {
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 1)
	spec.Layers = evalLayers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oracle.Evaluate(spec, attention.NewSWA(0.2, spec.Layers), evalSteps)
	}
}

func BenchmarkOracleEvaluateSequential(b *testing.B) {
	spec := oracle.SpecForModel(model.MustByName("opt-6.7b"), 1)
	spec.Layers = evalLayers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oracle.EvaluateSequential(spec, attention.NewSWA(0.2, spec.Layers), evalSteps)
	}
}

func BenchmarkOracleStep(b *testing.B) {
	proc := oracle.New(oracle.DefaultSpec(4, 1))
	for i := 0; i < 256; i++ {
		proc.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if proc.Step() > 2000 {
			b.StopTimer()
			proc = oracle.New(oracle.DefaultSpec(4, 1))
			for j := 0; j < 256; j++ {
				proc.Next()
			}
			b.StartTimer()
		}
		proc.Next()
	}
}

func BenchmarkEngineDecodeStep(b *testing.B) {
	// One full ALISA simulation per iteration at a reduced output length,
	// normalised per decode step via the reported metric.
	cfg := core.Config{
		Model:   model.MustByName("opt-6.7b"),
		Profile: memsim.V100_16G(),
		Batch:   64, Input: 128, Output: 64,
		KVSparsity: 0.8, KVBits: 8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Scheduler = sched.NewAlisa()
		if _, err := core.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving sweep benchmarks ---

// sweepBenchEngines compiles the sweep benchmark's engines (event log
// off) and traces once; the benchmarks reuse them across iterations so
// only cell execution is timed.
func sweepBenchEngines(b *testing.B) ([]*Engine, []TraceWorkload) {
	b.Helper()
	var engines []*Engine
	for _, name := range []string{"alisa", "vllm"} {
		opts := []Option{WithScheduler(name)}
		if name == "alisa" {
			opts = append(opts, WithKVSparsity(0.8), WithKVBits(8))
		}
		eng, err := New("opt-6.7b", opts...)
		if err != nil {
			b.Fatal(err)
		}
		engines = append(engines, eng)
	}
	var traces []TraceWorkload
	for _, rate := range []float64{1, 2, 4, 8} {
		traces = append(traces, PoissonTrace(16, rate, 1))
	}
	return engines, traces
}

// BenchmarkSweepSerial runs a (scheduler × offered load) sweep one cell
// at a time — the pre-ServeMany execution model.
func BenchmarkSweepSerial(b *testing.B) {
	engines, traces := sweepBenchEngines(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eng := range engines {
			for _, tr := range traces {
				if _, err := eng.Serve(ctx, tr); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSweepParallel runs the same sweep through Engine.ServeMany,
// which executes the rate cells concurrently on GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) {
	engines, traces := sweepBenchEngines(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eng := range engines {
			if _, err := eng.ServeMany(ctx, traces); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSessionSteadyState measures one full streaming-session cycle
// — Open, push the pressured 20-request replay workload, drain, Close —
// the session-path counterpart of internal/serve's BenchmarkServe. The
// allocs/op delta against that benchmark is the price of the public
// streaming surface (the window, the tap, incremental record arenas);
// TestSessionSteadyStateAllocs guards it against regressing.
func BenchmarkSessionSteadyState(b *testing.B) {
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(8))
	if err != nil {
		b.Fatal(err)
	}
	trace := PoissonTrace(20, 3.0, 42)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eng.Open(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range trace {
			if err := s.Push(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoop measures one closed-loop run — 8 clients, 32
// requests — through the Session-based driver, the unit of the
// latency-vs-concurrency table.
func BenchmarkClosedLoop(b *testing.B) {
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cl := ClosedLoop{Clients: 8, Requests: 32, ThinkTime: 0.25, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ServeClosedLoop(ctx, cl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Model:   model.MustByName("opt-13b"),
			Profile: memsim.V100_32G(),
			Batch:   64, Input: 128, Output: 512,
			KVSparsity: 0.8, KVBits: 8,
			Scheduler: sched.NewAlisa(),
		}
		// Optimizer runs inside Init; isolate it through a direct call.
		_ = cfg
		sys := memsim.NewSystem(cfg.Profile)
		_ = sys.AllocGPU(cfg.Model.WeightBytes(2))
		ctx := &sched.Context{
			Sys: sys, Cost: costmodel.New(cfg.Profile), Model: cfg.Model,
			Batch: cfg.Batch, Input: cfg.Input, Output: cfg.Output,
			CachingRatio: 0.2, KVBits: 8,
		}
		sched.Optimize(ctx)
	}
}
