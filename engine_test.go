package alisa

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/attention"
	"repro/internal/sched"
)

// TestNewValidation walks every invalid option field and asserts the
// compile step rejects it with a ConfigError naming that field.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		model string
		opts  []Option
		field string
	}{
		{"unknown model", "gpt-5", nil, "Model"},
		{"empty profile", "opt-6.7b", []Option{WithProfile("")}, "Profile"},
		{"unknown profile", "opt-6.7b", []Option{WithProfile("TPU")}, "Profile"},
		{"empty scheduler", "opt-6.7b", []Option{WithScheduler("")}, "Scheduler"},
		{"unknown scheduler", "opt-6.7b", []Option{WithScheduler("magic")}, "Scheduler"},
		{"negative sparsity", "opt-6.7b", []Option{WithKVSparsity(-0.1)}, "KVSparsity"},
		{"dense-exclusive sparsity", "opt-6.7b", []Option{WithKVSparsity(1.0)}, "KVSparsity"},
		{"zero bits", "opt-6.7b", []Option{WithKVBits(0)}, "KVBits"},
		{"int4 bits", "opt-6.7b", []Option{WithKVBits(4)}, "KVBits"},
		{"odd bits", "opt-6.7b", []Option{WithKVBits(7)}, "KVBits"},
		{"zero max batch", "opt-6.7b", []Option{WithMaxBatch(0)}, "MaxBatch"},
		{"negative max batch", "opt-6.7b", []Option{WithMaxBatch(-3)}, "MaxBatch"},
		{"zero TTFT SLO", "opt-6.7b", []Option{WithSLO(0, 0.5)}, "SLOTTFT"},
		{"negative TPOT SLO", "opt-6.7b", []Option{WithSLO(10, -1)}, "SLOTPOT"},
		{"nil observer", "opt-6.7b", []Option{WithObserver(nil)}, "Observer"},
		{"nil option", "opt-6.7b", []Option{nil}, "Option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.model, tc.opts...)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
		})
	}
}

// TestRunValidation covers the per-call inputs: workload shape, serving
// trace, and evaluation steps.
func TestRunValidation(t *testing.T) {
	eng, err := New("opt-6.7b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	shapes := []struct {
		shape Shape
		field string
	}{
		{Shape{Batch: 0, Input: 8, Output: 8}, "Batch"},
		{Shape{Batch: 1, Input: 0, Output: 8}, "Input"},
		{Shape{Batch: 1, Input: 8, Output: -1}, "Output"},
	}
	for _, tc := range shapes {
		_, err := eng.Simulate(ctx, tc.shape)
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("Simulate(%+v): err = %v, want ConfigError on %s", tc.shape, err, tc.field)
		}
	}

	var ce *ConfigError
	if _, err := eng.Serve(ctx, nil); !errors.As(err, &ce) || ce.Field != "Trace" {
		t.Errorf("Serve(nil trace): err = %v, want ConfigError on Trace", err)
	}
	if _, err := eng.Serve(ctx, TraceWorkload{}); !errors.As(err, &ce) || ce.Field != "Trace" {
		t.Errorf("Serve(empty trace): err = %v, want ConfigError on Trace", err)
	}
	if _, err := eng.EvaluatePolicy(ctx, "swa", 0); !errors.As(err, &ce) || ce.Field != "Steps" {
		t.Errorf("EvaluatePolicy(steps=0): err = %v, want ConfigError on Steps", err)
	}
	if _, err := eng.EvaluatePolicy(ctx, "magic", 8); !errors.As(err, &ce) || ce.Field != "Policy" {
		t.Errorf("EvaluatePolicy(magic): err = %v, want ConfigError on Policy", err)
	}
	// The deprecated shim validates steps before any construction too.
	if _, err := EvaluatePolicy("opt-6.7b", "swa", 0.8, 0, 1); !errors.As(err, &ce) || ce.Field != "Steps" {
		t.Errorf("EvaluatePolicy shim (steps=0): err = %v, want ConfigError on Steps", err)
	}
}

func TestEngineAccessors(t *testing.T) {
	eng, err := New("opt-13b", WithScheduler("flexgen"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Model() != "opt-13b" || eng.Profile() != "V100-32GB" || eng.Scheduler() != "flexgen" {
		t.Fatalf("accessors = %s/%s/%s", eng.Model(), eng.Profile(), eng.Scheduler())
	}
}

// TestEngineReuse pins the compiled engine's reusability: repeated runs
// of the same shape are bit-identical (scheduler state is per-run).
func TestEngineReuse(t *testing.T) {
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shape := Shape{Batch: 8, Input: 64, Output: 64}
	first, err := eng.Simulate(ctx, shape)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Simulate(ctx, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated Simulate on one engine diverged")
	}

	trace := PoissonTrace(8, 3, 5)
	sa, err := eng.Serve(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eng.Serve(ctx, trace)
	if err != nil {
		t.Fatal(err)
	}
	if sa.RenderEventLog() != sb.RenderEventLog() {
		t.Fatal("repeated Serve on one engine diverged")
	}
}

// TestSimulateCancellation cancels mid-run from an observer callback and
// expects the partial result alongside ctx.Err().
func TestSimulateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 5
	eng, err := New("opt-6.7b",
		WithScheduler("gpu-only"),
		WithObserver(ObserverFuncs{Step: func(e StepEvent) {
			if e.Step == cancelAt {
				cancel()
			}
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Simulate(ctx, Shape{Batch: 2, Input: 32, Output: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Simulate returned no partial result")
	}
	if len(res.Steps) != cancelAt+1 {
		t.Fatalf("partial result has %d steps, want %d", len(res.Steps), cancelAt+1)
	}
	if res.TotalSeconds <= 0 {
		t.Fatalf("partial result carries no measured time: %v", res.TotalSeconds)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
	}
}

// TestServeCancellation cancels after the third completion and expects a
// partial Result summarising only the finished requests. Getting
// ctx.Err() back (not a leak error) proves the cancelled run released
// every in-flight allocation: the end-of-run leak check runs on the
// cancellation path too.
func TestServeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n, cancelAfter = 16, 3
	done := 0
	eng, err := New("opt-6.7b",
		WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(4),
		WithObserver(ObserverFuncs{Completion: func(e CompletionEvent) {
			done++
			if done == cancelAfter {
				cancel()
			}
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Serve(ctx, PoissonTrace(n, 4, 7))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Serve returned no partial result")
	}
	if len(res.Requests) < cancelAfter || len(res.Requests) >= n {
		t.Fatalf("partial result has %d finished requests, want in [%d, %d)", len(res.Requests), cancelAfter, n)
	}
	for _, r := range res.Requests {
		if r.Finished <= 0 {
			t.Fatalf("partial result includes unfinished request %+v", r)
		}
	}
	if res.TTFT.P50 <= 0 {
		t.Fatalf("partial metrics empty: %+v", res.TTFT)
	}
}

func TestEvaluatePolicyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := New("opt-6.7b", WithKVSparsity(0.8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.EvaluatePolicy(ctx, "swa", 128)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatalf("cancelled evaluation returned a report: %+v", rep)
	}
}

// pinAllScheduler is a custom KV placement policy defined entirely
// outside internal/: every token's KV stays on the GPU.
type pinAllScheduler struct{ tokens int }

func (p *pinAllScheduler) Name() string { return "test-pin-all" }

func (p *pinAllScheduler) Init(ctx *sched.Context) error {
	p.tokens = 0
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
			return err
		}
		p.tokens++
	}
	return nil
}

func (p *pinAllScheduler) Step(ctx *sched.Context, j int) (sched.StepPlan, error) {
	if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
		return sched.StepPlan{}, err
	}
	p.tokens++
	return sched.StepPlan{Attended: p.tokens}, nil
}

func (p *pinAllScheduler) Release(ctx *sched.Context) (gpuBytes, cpuBytes int64) {
	gpuBytes = int64(p.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeGPU(gpuBytes)
	p.tokens = 0
	return gpuBytes, 0
}

// TestCustomSchedulerEndToEnd registers a scheduler from user code and
// runs it through both Simulate and Serve without touching internal/.
func TestCustomSchedulerEndToEnd(t *testing.T) {
	if err := sched.Register("test-pin-all", func() sched.Scheduler { return &pinAllScheduler{} }); err != nil {
		t.Fatal(err)
	}
	eng, err := New("opt-6.7b", WithScheduler("test-pin-all"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := eng.Simulate(ctx, Shape{Batch: 4, Input: 32, Output: 32})
	if err != nil {
		t.Fatalf("Simulate through custom scheduler: %v", err)
	}
	if res.Scheduler != "test-pin-all" || res.Throughput <= 0 {
		t.Fatalf("scheduler %q throughput %v", res.Scheduler, res.Throughput)
	}

	sres, err := eng.Serve(ctx, PoissonTrace(6, 3, 2))
	if err != nil {
		t.Fatalf("Serve through custom scheduler: %v", err)
	}
	if sres.Scheduler != "test-pin-all" || len(sres.Requests) != 6 {
		t.Fatalf("serve scheduler %q completed %d", sres.Scheduler, len(sres.Requests))
	}
}

// TestCustomAttentionPolicyEndToEnd registers an attention policy from
// user code and evaluates it; being a re-badged Local policy, its report
// must match the built-in bit for bit.
func TestCustomAttentionPolicyEndToEnd(t *testing.T) {
	err := attention.Register("test-relabelled-local", func(r float64, _ int) (attention.Policy, error) {
		return attention.NewLocal(r), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	custom, err := eng.EvaluatePolicy(ctx, "test-relabelled-local", 64)
	if err != nil {
		t.Fatalf("EvaluatePolicy through custom policy: %v", err)
	}
	builtin, err := eng.EvaluatePolicy(ctx, "local", 64)
	if err != nil {
		t.Fatal(err)
	}
	if custom.MeanRecall != builtin.MeanRecall || custom.Spearman != builtin.Spearman {
		t.Fatalf("custom %+v != builtin %+v", custom, builtin)
	}
}

// TestObserverEventStream pins the observer's event accounting on both
// run methods.
func TestObserverEventStream(t *testing.T) {
	var steps, admits, completes, preempts int
	obs := ObserverFuncs{
		Step:       func(StepEvent) { steps++ },
		Admission:  func(AdmissionEvent) { admits++ },
		Preemption: func(PreemptionEvent) { preempts++ },
		Completion: func(CompletionEvent) { completes++ },
	}
	eng, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const output = 48
	if _, err := eng.Simulate(ctx, Shape{Batch: 4, Input: 32, Output: output}); err != nil {
		t.Fatal(err)
	}
	if steps != output {
		t.Fatalf("Simulate emitted %d step events, want %d", steps, output)
	}

	steps = 0
	const n = 10
	res, err := eng.Serve(ctx, PoissonTrace(n, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if completes != n {
		t.Fatalf("Serve emitted %d completions, want %d", completes, n)
	}
	if admits != n+preempts {
		t.Fatalf("Serve emitted %d admissions, want %d arrivals + %d preemptions", admits, n, preempts)
	}
	if preempts != res.Preemptions {
		t.Fatalf("observer saw %d preemptions, result reports %d", preempts, res.Preemptions)
	}
	if steps <= 0 {
		t.Fatal("Serve emitted no step events")
	}
}
