package alisa_test

import (
	"context"
	"fmt"
	"log"

	alisa "repro"
	"repro/internal/sched"
)

// greedyGPU is a user-defined KV placement policy: keep every token's KV
// on the GPU, with no offloading or deletion. It implements
// sched.Scheduler (placement planning) and sched.Releaser
// (free-on-completion, required by Engine.Serve).
type greedyGPU struct{ tokens int }

func (g *greedyGPU) Name() string { return "greedy-gpu" }

func (g *greedyGPU) Init(ctx *sched.Context) error {
	g.tokens = 0
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
			return err
		}
		g.tokens++
	}
	return nil
}

func (g *greedyGPU) Step(ctx *sched.Context, j int) (sched.StepPlan, error) {
	if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
		return sched.StepPlan{}, err
	}
	g.tokens++
	return sched.StepPlan{Attended: g.tokens}, nil
}

func (g *greedyGPU) Release(ctx *sched.Context) (gpuBytes, cpuBytes int64) {
	gpuBytes = int64(g.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeGPU(gpuBytes)
	g.tokens = 0
	return gpuBytes, 0
}

// ExampleEngine_session drives the streaming serving surface: open a
// session, push requests onto the simulated timeline (a burst now, one
// arriving later), let the loop drain, and read both the online window
// and the final result. Serve is this same loop seeded with a whole
// trace; a session lets traffic arrive while the simulation runs.
func ExampleEngine_session() {
	eng, err := alisa.New("opt-6.7b", alisa.WithKVSparsity(0.8), alisa.WithKVBits(8))
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.Open(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Push(alisa.Request{ID: i, Arrival: 0, Input: 64, Output: 32}); err != nil {
			log.Fatal(err)
		}
	}
	// A request pushed with a future arrival: the session jumps its
	// clock to it once the burst drains.
	if err := s.Push(alisa.Request{ID: 4, Arrival: 60, Input: 64, Output: 32}); err != nil {
		log.Fatal(err)
	}
	res, err := s.Close() // graceful drain: everything pushed completes
	if err != nil {
		log.Fatal(err)
	}
	snap := s.Snapshot()
	fmt.Printf("completed %d requests, window holds %d, SLO attainment %.0f%%\n",
		len(res.Requests), snap.Count, res.SLOAttainment*100)
	// Output: completed 5 requests, window holds 5, SLO attainment 100%
}

// ExampleEngine_customScheduler registers a scheduler through the open
// registry and compiles an engine onto it: the custom policy flows
// through Simulate (and Serve) exactly like a built-in.
func ExampleEngine_customScheduler() {
	if err := sched.Register("greedy-gpu", func() sched.Scheduler { return &greedyGPU{} }); err != nil {
		log.Fatal(err)
	}

	eng, err := alisa.New("opt-6.7b", alisa.WithScheduler("greedy-gpu"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Simulate(context.Background(), alisa.Shape{Batch: 4, Input: 32, Output: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s generated %d tokens\n", res.Scheduler, res.Tokens)
	// Output: greedy-gpu generated 64 tokens
}
