package alisa_test

import (
	"context"
	"fmt"
	"log"

	alisa "repro"
	"repro/internal/sched"
)

// greedyGPU is a user-defined KV placement policy: keep every token's KV
// on the GPU, with no offloading or deletion. It implements
// sched.Scheduler (placement planning) and sched.Releaser
// (free-on-completion, required by Engine.Serve).
type greedyGPU struct{ tokens int }

func (g *greedyGPU) Name() string { return "greedy-gpu" }

func (g *greedyGPU) Init(ctx *sched.Context) error {
	g.tokens = 0
	for i := 0; i < ctx.Input; i++ {
		if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
			return err
		}
		g.tokens++
	}
	return nil
}

func (g *greedyGPU) Step(ctx *sched.Context, j int) (sched.StepPlan, error) {
	if err := ctx.Sys.AllocGPU(ctx.TokenBytes()); err != nil {
		return sched.StepPlan{}, err
	}
	g.tokens++
	return sched.StepPlan{Attended: g.tokens}, nil
}

func (g *greedyGPU) Release(ctx *sched.Context) (gpuBytes, cpuBytes int64) {
	gpuBytes = int64(g.tokens) * ctx.TokenBytes()
	ctx.Sys.FreeGPU(gpuBytes)
	g.tokens = 0
	return gpuBytes, 0
}

// ExampleEngine_customScheduler registers a scheduler through the open
// registry and compiles an engine onto it: the custom policy flows
// through Simulate (and Serve) exactly like a built-in.
func ExampleEngine_customScheduler() {
	if err := sched.Register("greedy-gpu", func() sched.Scheduler { return &greedyGPU{} }); err != nil {
		log.Fatal(err)
	}

	eng, err := alisa.New("opt-6.7b", alisa.WithScheduler("greedy-gpu"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Simulate(context.Background(), alisa.Shape{Batch: 4, Input: 32, Output: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s generated %d tokens\n", res.Scheduler, res.Tokens)
	// Output: greedy-gpu generated 64 tokens
}
