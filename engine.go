package alisa

import (
	"context"
	"fmt"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/serve"
)

// ConfigError reports an invalid engine configuration value by field
// name, raised when the configuration is compiled (New) or when a run
// method validates its per-call inputs — before any simulation state is
// built, never from deep inside a run.
type ConfigError struct {
	// Field names the offending option or argument: "Model", "Profile",
	// "Scheduler", "KVSparsity", "KVBits", "MaxBatch", "SLOTTFT",
	// "SLOTPOT", "Observer", "MetricsWindow", "Batch", "Input",
	// "Output", "Trace", "Policy", "Steps", "Clients", "Requests",
	// "ThinkTime", "Replicas", "Router", "Autoscale", "PrefixBlock",
	// or "PrefixBudget".
	Field  string
	Value  any
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("alisa: invalid %s (%v): %s", e.Field, e.Value, e.Reason)
}

// evalLayerSample is the layer count of the compiled accuracy-evaluation
// process: the synthetic attention process is layer-exchangeable, so a
// small sample of layers measures the same statistics as the full stack
// at a fraction of the cost.
const evalLayerSample = 4

// Engine is a compiled simulation configuration: New resolves and
// validates the model, hardware profile, scheduler, sparsity,
// quantization, and serving parameters exactly once, and every subsequent
// Simulate / Serve / EvaluatePolicy call runs against that compiled state
// with no per-call lookups or re-validation. Sweeps that probe many
// workload points against one configuration therefore pay setup once.
//
// An Engine is immutable after New and safe for concurrent use by
// multiple goroutines, except that an attached Observer receives events
// from all concurrent runs and must synchronise internally (wrap it with
// SynchronizedObserver, or use ServeMany, which applies that wrapping
// itself). ServeMany runs the cells of a load sweep concurrently with
// deterministic per-cell results.
type Engine struct {
	// option state (raw, as supplied)
	profileName   string
	schedName     string
	kvSparsity    float64
	kvBits        int
	maxBatch      int
	sloTTFT       float64
	sloTPOT       float64
	observer      Observer
	seed          int64
	captureLog    bool
	metricsWindow int
	exactMetrics  int
	prefixBlock   int
	prefixBudget  int64

	// compiled state
	model    model.Config
	profile  memsim.Profile
	newSched sched.Factory
	spec     oracle.Spec
}

// Option configures an Engine at construction; see the With* functions.
type Option func(*Engine) error

// WithProfile selects the simulated hardware by registered profile name
// (built-ins: V100-16GB, V100-32GB, H100-80GB). The default is the
// paper's pairing for the model scale.
func WithProfile(name string) Option {
	return func(e *Engine) error {
		if name == "" {
			return &ConfigError{Field: "Profile", Value: name, Reason: "profile name must be non-empty"}
		}
		e.profileName = name
		return nil
	}
}

// WithScheduler selects the KV placement policy by registered scheduler
// name (built-ins: alisa, flexgen, vllm, deepspeed-zero, hf-accelerate,
// gpu-only, no-cache, plus anything added through the scheduler
// registry). The default is "alisa".
func WithScheduler(name string) Option {
	return func(e *Engine) error {
		if name == "" {
			return &ConfigError{Field: "Scheduler", Value: name, Reason: "scheduler name must be non-empty"}
		}
		e.schedName = name
		return nil
	}
}

// WithKVSparsity sets SWA's skipped-token fraction, in [0, 1); 0 (the
// default) is dense attention. The paper's headline setting is 0.8.
func WithKVSparsity(s float64) Option {
	return func(e *Engine) error {
		if s < 0 || s >= 1 {
			return &ConfigError{Field: "KVSparsity", Value: s, Reason: "must be in [0,1)"}
		}
		e.kvSparsity = s
		return nil
	}
}

// WithKVBits sets the stored KV precision: 16 (FP16, the default) or 8
// (the paper's INT8 compression).
func WithKVBits(bits int) Option {
	return func(e *Engine) error {
		if bits != 8 && bits != 16 {
			return &ConfigError{Field: "KVBits", Value: bits, Reason: "must be 8 or 16"}
		}
		e.kvBits = bits
		return nil
	}
}

// WithMaxBatch caps concurrent decode sequences in Serve (default 16).
func WithMaxBatch(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return &ConfigError{Field: "MaxBatch", Value: n, Reason: "must be positive"}
		}
		e.maxBatch = n
		return nil
	}
}

// WithSLO sets the goodput service-level objectives for Serve: the
// time-to-first-token and time-per-output-token bounds, both in seconds
// (defaults 10 and 0.5).
func WithSLO(ttft, tpot float64) Option {
	return func(e *Engine) error {
		if ttft <= 0 {
			return &ConfigError{Field: "SLOTTFT", Value: ttft, Reason: "must be positive seconds"}
		}
		if tpot <= 0 {
			return &ConfigError{Field: "SLOTPOT", Value: tpot, Reason: "must be positive seconds"}
		}
		e.sloTTFT, e.sloTPOT = ttft, tpot
		return nil
	}
}

// WithEventLog toggles capture of Serve's human-readable event log
// (ServeResult.EventLog). Off — the default — the serving loop's steady
// state formats no event strings at all, the right mode for sweeps;
// on, the captured log is byte-identical to what Serve has always
// produced, which the replay-determinism suite pins. Streaming Observer
// delivery is independent of this switch.
func WithEventLog(on bool) Option {
	return func(e *Engine) error {
		e.captureLog = on
		return nil
	}
}

// WithMetricsWindow sets how many recent completions a Session's rolling
// metrics window holds (default 64) — the population Session.Snapshot
// digests into online TTFT/TPOT/E2E percentiles, windowed goodput, and
// SLO attainment. Larger windows smooth the percentiles; a window at
// least as large as the workload converges to the final ServeResult.
func WithMetricsWindow(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return &ConfigError{Field: "MetricsWindow", Value: n, Reason: "must be positive"}
		}
		e.metricsWindow = n
		return nil
	}
}

// WithExactMetrics sets the serving loop's exact-metrics threshold: runs
// whose total request count stays at or below n keep every per-request
// record and report metrics bit-identical to what Serve has always
// produced, while the first request past n switches the run to scale
// mode — completions stream into fixed-size quantile digests, records
// are recycled immediately, and retained memory tracks the live backlog
// instead of the trace length (ServeResult.Requests is then nil and the
// latency percentiles are sketch estimates within a documented
// rank-error bound; Mean and Max stay exact). 0 — the default — selects
// serve.DefaultExactMetrics (65536), which keeps every realistic
// benchmark trace on the exact path; negative streams from the first
// request. See DESIGN.md §10.
func WithExactMetrics(n int) Option {
	return func(e *Engine) error {
		e.exactMetrics = n
		return nil
	}
}

// PrefixCache configures the serving loop's shared prefix KV cache; see
// WithPrefixCache.
type PrefixCache struct {
	// BlockTokens is the sharing granularity: prompts are cached and
	// matched in blocks of this many token IDs. Required, positive; 16
	// is a reasonable default (the alisa-serve CLI's).
	BlockTokens int
	// BudgetBytes caps the cache's simulated GPU-resident bytes. 0
	// defaults to a quarter of the GPU headroom left after weights and
	// activations are reserved.
	BudgetBytes int64
}

// WithPrefixCache enables copy-on-write prefix KV sharing in Serve,
// Session, and cluster runs (DESIGN.md §13): prompts of admitted
// requests are cached block-granularly in a radix index, and later
// requests whose token IDs share a block-aligned prefix skip prefilling
// the matched tokens, paying only a fast HBM copy of the shared KV.
// Only requests that carry token IDs (Request.Tokens — the conversation,
// agent, and RAG workloads populate them) participate; shape-only
// requests always prefill in full. Off by default, and with it off the
// serving paths are bit-identical to an engine without the option.
func WithPrefixCache(pc PrefixCache) Option {
	return func(e *Engine) error {
		if pc.BlockTokens <= 0 {
			return &ConfigError{Field: "PrefixBlock", Value: pc.BlockTokens, Reason: "block must be positive tokens"}
		}
		if pc.BudgetBytes < 0 {
			return &ConfigError{Field: "PrefixBudget", Value: pc.BudgetBytes, Reason: "budget must be non-negative bytes"}
		}
		e.prefixBlock, e.prefixBudget = pc.BlockTokens, pc.BudgetBytes
		return nil
	}
}

// WithObserver attaches a streaming Observer: Simulate sends step events,
// Serve and Session send step, admission, first-token, token,
// preemption, and completion events. Callbacks run inline on the
// simulation loop.
func WithObserver(o Observer) Option {
	return func(e *Engine) error {
		if o == nil {
			return &ConfigError{Field: "Observer", Value: nil, Reason: "observer must be non-nil"}
		}
		e.observer = o
		return nil
	}
}

// WithSeed sets the seed of the calibrated attention process
// EvaluatePolicy runs against (default 1). Simulate and Serve are fully
// deterministic and take no randomness from the seed.
func WithSeed(seed int64) Option {
	return func(e *Engine) error {
		e.seed = seed
		return nil
	}
}

// New compiles an engine for the named catalog model (see Models, plus
// any model added through the model registry), applying the options in
// order. All name resolution and validation happens here, exactly once;
// errors are *ConfigError values naming the offending field.
func New(modelName string, opts ...Option) (*Engine, error) {
	e := &Engine{
		schedName:     "alisa",
		kvBits:        16,
		maxBatch:      16,
		sloTTFT:       10,
		sloTPOT:       0.5,
		seed:          1,
		metricsWindow: 64,
	}
	mc, err := model.ByName(modelName)
	if err != nil {
		return nil, &ConfigError{Field: "Model", Value: modelName, Reason: err.Error()}
	}
	e.model = mc

	for _, opt := range opts {
		if opt == nil {
			return nil, &ConfigError{Field: "Option", Value: nil, Reason: "nil Option"}
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}

	if e.profileName == "" {
		e.profile = experiments.PaperProfile(mc)
	} else {
		prof, err := memsim.ProfileByName(e.profileName)
		if err != nil {
			return nil, &ConfigError{Field: "Profile", Value: e.profileName, Reason: err.Error()}
		}
		e.profile = prof
	}

	factory, err := sched.FactoryByName(e.schedName)
	if err != nil {
		return nil, &ConfigError{Field: "Scheduler", Value: e.schedName, Reason: err.Error()}
	}
	e.newSched = factory

	e.spec = oracle.SpecForModel(mc, e.seed)
	e.spec.Layers = evalLayerSample
	return e, nil
}

// Model returns the compiled model's canonical catalog name.
func (e *Engine) Model() string { return e.model.Name }

// Profile returns the compiled hardware profile's name.
func (e *Engine) Profile() string { return e.profile.Name }

// Scheduler returns the compiled scheduler's registered name.
func (e *Engine) Scheduler() string { return e.schedName }

// Shape is one simulated workload point for Simulate: Batch sequences,
// each prefilling Input prompt tokens and generating Output tokens.
type Shape struct {
	Batch  int
	Input  int
	Output int
}

// validate reports the first invalid shape field.
func (s Shape) validate() error {
	switch {
	case s.Batch <= 0:
		return &ConfigError{Field: "Batch", Value: s.Batch, Reason: "must be positive"}
	case s.Input <= 0:
		return &ConfigError{Field: "Input", Value: s.Input, Reason: "must be positive"}
	case s.Output <= 0:
		return &ConfigError{Field: "Output", Value: s.Output, Reason: "must be positive"}
	}
	return nil
}

// Simulate runs one end-to-end lockstep inference simulation of the given
// workload shape against the compiled configuration — the unit of the
// paper's system evaluation. Out-of-memory failures return a Result with
// OOM set alongside the error, because OOM is itself a reported
// datapoint. Cancelling ctx mid-run returns the partial Result measured
// so far alongside ctx.Err().
func (e *Engine) Simulate(ctx context.Context, shape Shape) (*Result, error) {
	if err := shape.validate(); err != nil {
		return nil, err
	}
	return core.Run(ctx, core.Config{
		Model: e.model, Profile: e.profile, Scheduler: e.newSched(),
		Batch: shape.Batch, Input: shape.Input, Output: shape.Output,
		KVSparsity: e.kvSparsity, KVBits: e.kvBits,
		Observer: e.observer,
	})
}

// Serve runs a continuous-batching serving simulation of the trace
// against the compiled configuration: requests arrive on the trace
// timeline, a dynamic decode batch forms under admission control, and the
// compiled scheduler places each request's KV. Cancelling ctx mid-run
// releases all in-flight KV (the end-of-run leak check still applies) and
// returns the partial Result — metrics over the requests that completed —
// alongside ctx.Err().
//
// Serve is the offline replay adapter over the streaming session core:
// it seeds the step-driven loop with the whole trace and drains it. For
// interactive traffic — pushing requests mid-run, closed-loop clients,
// online windowed metrics, graceful drain — use Open / ServeClosedLoop.
func (e *Engine) Serve(ctx context.Context, trace TraceWorkload) (*ServeResult, error) {
	if len(trace) == 0 {
		return nil, &ConfigError{Field: "Trace", Value: trace, Reason: "trace must be non-empty"}
	}
	return serve.Run(ctx, e.serveConfig(trace, e.observer))
}

// serveConfig projects the compiled state onto one serving run.
func (e *Engine) serveConfig(trace TraceWorkload, obs Observer) serve.Config {
	return serve.Config{
		Model: e.model, Profile: e.profile,
		Scheduler: e.schedName, Factory: e.newSched,
		Trace:      trace,
		KVSparsity: e.kvSparsity, KVBits: e.kvBits,
		MaxBatch: e.maxBatch, SLOTTFT: e.sloTTFT, SLOTPOT: e.sloTPOT,
		Observer:     obs,
		CaptureLog:   e.captureLog,
		ExactMetrics: e.exactMetrics,
		PrefixBlock:  e.prefixBlock,
		PrefixBudget: e.prefixBudget,
	}
}

// ServeMany runs one serving simulation per trace — the cells of a load
// sweep — concurrently on up to GOMAXPROCS workers, all against the
// compiled configuration. results[i] always corresponds to traces[i]:
// each cell is the same single-goroutine deterministic simulation Serve
// runs, so the output is bit-identical to calling Serve once per trace
// serially, regardless of completion order (pinned by test).
//
// An attached Observer receives every cell's events, serialized through
// one mutex (no internal locking needed); events from different cells
// interleave in completion order. Cancelling ctx stops unstarted cells
// (their results stay nil) and winds in-flight cells down through
// Serve's cancellation path, which still leak-checks and returns partial
// metrics.
//
// The returned error is the first cell error in trace order — later
// cells still run (a sweep wants every healthy cell even when one
// operating point is unservable); inspect results[i] for the cells that
// completed.
func (e *Engine) ServeMany(ctx context.Context, traces []TraceWorkload) ([]*ServeResult, error) {
	if len(traces) == 0 {
		return nil, &ConfigError{Field: "Trace", Value: traces, Reason: "at least one trace required"}
	}
	for i, tr := range traces {
		if len(tr) == 0 {
			return nil, &ConfigError{Field: "Trace", Value: i, Reason: "trace must be non-empty"}
		}
	}
	obs := events.Synchronized(e.observer)
	results := make([]*ServeResult, len(traces))
	errs := make([]error, len(traces))
	_ = grid.Run(ctx, len(traces), 0, func(cellCtx context.Context, i int) {
		results[i], errs[i] = serve.Run(cellCtx, e.serveConfig(traces[i], obs))
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// EvaluatePolicy runs the named sparse-attention policy (see the
// attention registry; built-ins: dense, local, strided, swa, h2o) at the
// compiled KV sparsity against the compiled model-calibrated attention
// process for `steps` decode steps — the unit of the paper's accuracy
// evaluation. Cancelling ctx aborts with ctx.Err(); an accuracy
// evaluation has no meaningful partial result.
func (e *Engine) EvaluatePolicy(ctx context.Context, policyName string, steps int) (*PolicyReport, error) {
	if steps <= 0 {
		return nil, &ConfigError{Field: "Steps", Value: steps, Reason: "must be positive"}
	}
	pol, err := attention.ByName(policyName, 1-e.kvSparsity, e.spec.Layers)
	if err != nil {
		return nil, &ConfigError{Field: "Policy", Value: policyName, Reason: err.Error()}
	}
	ev, err := oracle.EvaluateContext(ctx, e.spec, pol, steps)
	if err != nil {
		return nil, err
	}
	rep := &PolicyReport{
		Policy:     policyName,
		KVSparsity: e.kvSparsity,
		MeanRecall: ev.MeanRecall,
	}
	if policyName == "dense" {
		// Dense attention is the reference distribution itself: its score
		// ranking compared against dense is the identity permutation, so
		// ρ ≡ 1 by definition and the numerical estimator is skipped (see
		// the PolicyReport.Spearman field comment).
		rep.Spearman = 1
	} else {
		rho, err := ev.SpearmanVsDense()
		if err != nil {
			return nil, err
		}
		rep.Spearman = rho
	}
	return rep, nil
}
