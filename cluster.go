package alisa

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/memsim"
)

// ClusterAutoscale is the fleet capacity policy — scale-up on windowed
// SLO attainment below target, scale-down on sustained idle, within
// [Min, Max] and a cooldown (see cluster.Autoscale for field semantics).
type ClusterAutoscale = cluster.Autoscale

// ClusterResult is the fleet outcome: per-replica serving results plus
// fleet-level aggregates and the autoscaler trail.
type ClusterResult = cluster.Result

// ClusterReplicaResult is one fleet member's slice of a ClusterResult.
type ClusterReplicaResult = cluster.ReplicaResult

// ReplicaView is the router's read-only view of one live replica:
// identity, tier, queue state, and KV pressure.
type ReplicaView = cluster.ReplicaView

// ClusterReplicaStatus pairs a replica's live view with its rolling
// window digest — the per-replica counterpart of Cluster.Snapshot.
type ClusterReplicaStatus = cluster.ReplicaStatus

// ClusterRouters returns the registered routing-policy names, sorted.
// Built-ins: affinity, least-kv, least-outstanding, round-robin; more
// plug in through cluster.RegisterRouter.
func ClusterRouters() []string { return cluster.Routers() }

// ClusterSpec sizes and shapes a fleet for OpenCluster / ServeCluster.
// Every replica runs the engine's compiled configuration; Profiles
// optionally overrides hardware per replica for heterogeneous fleets.
type ClusterSpec struct {
	// Replicas is the initial fleet size; must be at least 1.
	Replicas int
	// Profiles, when non-empty, assigns replica i the registered profile
	// Profiles[i mod len(Profiles)] — cycling, so two names alternate
	// tiers across any fleet size. Empty keeps the engine's compiled
	// profile on every replica.
	Profiles []string
	// Router is the registered routing policy ("" → "round-robin").
	Router string
	// Window is the fleet rolling-window capacity in completions
	// (0 → the engine's WithMetricsWindow setting).
	Window int
	// Autoscale, when non-nil, lets the fleet grow and shrink at
	// runtime; new replicas clone replica Template's configuration and
	// warm-start from a pristine snapshot fork.
	Autoscale *ClusterAutoscale
}

// Cluster is the fleet counterpart of Session: N replica serving loops
// behind the configured router, driven as one deterministic
// discrete-event simulation. Push routes and injects a request, Advance
// runs one fleet turn (the busy replica furthest behind in simulated
// time), Snapshot and Status expose fleet- and replica-level windowed
// metrics between turns, and Close drains everything and returns the
// final ClusterResult. Like Session, a Cluster is single-goroutine.
type Cluster struct {
	eng   *Engine
	ctx   context.Context
	fleet *cluster.Cluster
}

// OpenCluster builds an idle fleet of the engine's compiled
// configuration, sized and routed by spec. The engine's Observer (if
// any) receives every replica's streamed events after the fleet's own
// metrics tap, exactly as Session orders the engine observer first.
// Cancelling ctx mid-run latches the cancellation on the next
// transition, mirroring Session.
func (e *Engine) OpenCluster(ctx context.Context, spec ClusterSpec) (*Cluster, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := e.clusterConfig(spec)
	if err != nil {
		return nil, err
	}
	fleet, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: e, ctx: ctx, fleet: fleet}, nil
}

// clusterConfig projects the compiled engine state onto a fleet config.
func (e *Engine) clusterConfig(spec ClusterSpec) (cluster.Config, error) {
	if spec.Replicas < 1 {
		return cluster.Config{}, &ConfigError{Field: "Replicas", Value: spec.Replicas, Reason: "fleet needs at least one replica"}
	}
	if spec.Router != "" {
		if _, err := cluster.RouterByName(spec.Router); err != nil {
			return cluster.Config{}, &ConfigError{Field: "Router", Value: spec.Router, Reason: err.Error()}
		}
	}
	if spec.Window < 0 {
		return cluster.Config{}, &ConfigError{Field: "MetricsWindow", Value: spec.Window, Reason: "must be non-negative"}
	}
	window := spec.Window
	if window == 0 {
		window = e.metricsWindow
	}
	cfg := cluster.Config{
		Router: spec.Router,
		Window: window,
	}
	for i := 0; i < spec.Replicas; i++ {
		rc := e.serveConfig(nil, e.observer)
		if len(spec.Profiles) > 0 {
			name := spec.Profiles[i%len(spec.Profiles)]
			prof, err := memsim.ProfileByName(name)
			if err != nil {
				return cluster.Config{}, &ConfigError{Field: "Profile", Value: name, Reason: err.Error()}
			}
			rc.Profile = prof
		}
		cfg.Replicas = append(cfg.Replicas, rc)
	}
	if spec.Autoscale != nil {
		as := *spec.Autoscale
		cfg.Autoscale = &as
		// Validate eagerly so the error carries the public field name
		// instead of failing deep inside cluster.New.
		if err := cfg.Validate(); err != nil {
			return cluster.Config{}, &ConfigError{Field: "Autoscale", Value: fmt.Sprintf("%+v", as), Reason: err.Error()}
		}
	}
	return cfg, nil
}

// Push routes one request through the fleet's policy and injects it into
// the chosen replica. Arrival semantics match Session.Push; request IDs
// must be unique fleet-wide.
func (c *Cluster) Push(req Request) error { return c.fleet.Push(req) }

// Advance runs one fleet turn: the busy replica furthest behind in
// simulated time advances one event-loop turn and the autoscaler gets
// one look. false with a nil error means the whole fleet is idle.
func (c *Cluster) Advance() (bool, error) { return c.fleet.Advance(c.ctx) }

// Frontier returns the fleet's causal clock: the minimum simulated time
// among busy replicas, or the maximum replica clock when idle.
func (c *Cluster) Frontier() float64 { return c.fleet.Frontier() }

// Size returns the live replica count; Pending and InFlight aggregate
// queue depth and decode occupancy across the live fleet.
func (c *Cluster) Size() int { return c.fleet.Size() }

// Pending returns the fleet-wide admission-queue depth.
func (c *Cluster) Pending() int { return c.fleet.Pending() }

// InFlight returns the fleet-wide decode-batch occupancy.
func (c *Cluster) InFlight() int { return c.fleet.InFlight() }

// Snapshot digests the fleet's rolling completion window — the online
// fleet-level view between turns, and the autoscaler's input signal.
func (c *Cluster) Snapshot() WindowSnapshot { return c.fleet.Snapshot() }

// Status returns one entry per replica ever in the fleet (retired
// members included), each pairing the live routing view with that
// replica's own rolling window digest.
func (c *Cluster) Status() []ClusterReplicaStatus { return c.fleet.Status() }

// Close drains the fleet — every routed request runs to completion —
// leak-checks and finalizes each replica, and returns the rolled-up
// ClusterResult. Cancellation returns the partial result alongside the
// error, exactly as Session.Close; Close is idempotent.
func (c *Cluster) Close() (*ClusterResult, error) { return c.fleet.Close(c.ctx) }

// ServeCluster replays a trace through a fresh fleet and closes it: the
// offline fleet counterpart of Engine.Serve, and the driver behind the
// cluster CLI's load curves. Requests are routed in arrival order as the
// fleet frontier reaches them, so the router sees replica state as of
// each arrival; results are deterministic in (trace, spec) and
// bit-identical across repeated and concurrent runs.
func (e *Engine) ServeCluster(ctx context.Context, spec ClusterSpec, trace TraceWorkload) (*ClusterResult, error) {
	if len(trace) == 0 {
		return nil, &ConfigError{Field: "Trace", Value: trace, Reason: "trace must be non-empty"}
	}
	cfg, err := e.clusterConfig(spec)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return cluster.Replay(ctx, cfg, trace)
}
