// Package alisa is a from-scratch reproduction of "ALISA: Accelerating
// Large Language Model Inference via Sparsity-Aware KV Caching" (ISCA
// 2024): the Sparse Window Attention algorithm, the three-phase
// token-level dynamic scheduler with its offline optimizer, INT8 KV
// compression, the baseline systems the paper compares against (FlexGen,
// vLLM, DeepSpeed-ZeRO, HuggingFace Accelerate), and a simulated single
// GPU–CPU system standing in for the paper's V100/H100 testbeds.
//
// The public surface has three levels:
//
//   - Simulate runs one end-to-end inference simulation (model ×
//     hardware × scheduler × workload) and reports throughput, the
//     execution-time breakdown, and the memory trajectory — the unit of
//     the paper's system evaluation.
//   - EvaluatePolicy runs a sparse-attention policy against a calibrated
//     synthetic attention process and reports attention-mass recall and
//     Spearman correlation — the unit of the paper's accuracy evaluation.
//   - Experiments/RunExperiment regenerate every table and figure of the
//     paper's evaluation section.
//
// See DESIGN.md for the system inventory and the hardware-gate
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package alisa

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/sched"
)

// Options configures one simulated inference run.
type Options struct {
	// Model is a catalog name: opt-6.7b, opt-13b, opt-30b, llama-7b,
	// llama-13b, llama-33b, pythia-6.9b, pythia-12b.
	Model string
	// Profile is the simulated hardware: V100-16GB, V100-32GB, H100-80GB.
	// Empty selects the paper's pairing for the model scale.
	Profile string
	// Scheduler is the KV placement policy: alisa, flexgen, vllm,
	// deepspeed-zero, hf-accelerate, gpu-only, no-cache.
	Scheduler string

	Batch  int
	Input  int
	Output int

	// KVSparsity ∈ [0, 1) is SWA's skipped-token fraction (paper headline
	// setting: 0.8). KVBits is the KV storage precision, 16 or 8.
	KVSparsity float64
	KVBits     int
}

// Result is the outcome of a simulation; see core.Result for field
// documentation.
type Result = core.Result

// Simulate runs one end-to-end inference simulation.
func Simulate(opts Options) (*Result, error) {
	mc, err := model.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	var prof memsim.Profile
	if opts.Profile == "" {
		prof = experiments.PaperProfile(mc)
	} else {
		prof, err = memsim.ProfileByName(opts.Profile)
		if err != nil {
			return nil, err
		}
	}
	s, err := sched.ByName(opts.Scheduler)
	if err != nil {
		return nil, err
	}
	return core.Run(core.Config{
		Model: mc, Profile: prof, Scheduler: s,
		Batch: opts.Batch, Input: opts.Input, Output: opts.Output,
		KVSparsity: opts.KVSparsity, KVBits: opts.KVBits,
	})
}

// Policy is a sparse-attention token-selection policy (dense, local,
// strided, swa, h2o).
type Policy = attention.Policy

// NewPolicy constructs a policy by name at the given caching ratio
// (1 − KV sparsity) for a model with the given layer count.
func NewPolicy(name string, cachingRatio float64, layers int) (Policy, error) {
	switch name {
	case "dense":
		return attention.NewDense(), nil
	case "local":
		return attention.NewLocal(cachingRatio), nil
	case "strided":
		return attention.NewStrided(cachingRatio), nil
	case "swa":
		return attention.NewSWA(cachingRatio, layers), nil
	case "h2o":
		return attention.NewH2O(cachingRatio, layers), nil
	}
	return nil, fmt.Errorf("alisa: unknown policy %q", name)
}

// PolicyReport summarises an accuracy-side evaluation of a policy.
type PolicyReport struct {
	Policy     string
	KVSparsity float64
	// MeanRecall is the average dense-attention mass the retained token
	// sets captured; Spearman is the rank correlation of the policy's
	// score distribution against dense attention (paper Fig. 4's ρ).
	MeanRecall float64
	Spearman   float64
}

// EvaluatePolicy runs the named policy at the given KV sparsity against an
// attention process calibrated to the named model, for `steps` decode
// steps.
func EvaluatePolicy(modelName, policyName string, kvSparsity float64, steps int, seed int64) (*PolicyReport, error) {
	mc, err := model.ByName(modelName)
	if err != nil {
		return nil, err
	}
	spec := oracle.SpecForModel(mc, seed)
	spec.Layers = 4 // layer sample; the process is layer-exchangeable
	pol, err := NewPolicy(policyName, 1-kvSparsity, spec.Layers)
	if err != nil {
		return nil, err
	}
	if steps <= 0 {
		return nil, fmt.Errorf("alisa: steps must be positive, got %d", steps)
	}
	ev := oracle.Evaluate(spec, pol, steps)
	rep := &PolicyReport{
		Policy:     policyName,
		KVSparsity: kvSparsity,
		MeanRecall: ev.MeanRecall,
		Spearman:   1,
	}
	if policyName != "dense" {
		rho, err := ev.SpearmanVsDense()
		if err != nil {
			return nil, err
		}
		rep.Spearman = rho
	}
	return rep, nil
}

// Experiment identifies one reproducible table or figure.
type Experiment = experiments.Runner

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by id ("fig9", "table1", ...) and
// returns its rendered report.
func RunExperiment(id string) (string, error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := r.Run()
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// Models lists the model catalog names.
func Models() []string { return model.Names() }

// Schedulers lists the scheduler names in evaluation order.
func Schedulers() []string { return sched.Names() }
