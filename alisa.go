// Package alisa is a from-scratch reproduction of "ALISA: Accelerating
// Large Language Model Inference via Sparsity-Aware KV Caching" (ISCA
// 2024): the Sparse Window Attention algorithm, the three-phase
// token-level dynamic scheduler with its offline optimizer, INT8 KV
// compression, the baseline systems the paper compares against (FlexGen,
// vLLM, DeepSpeed-ZeRO, HuggingFace Accelerate), and a simulated single
// GPU–CPU system standing in for the paper's V100/H100 testbeds.
//
// The public surface centres on the compiled Engine:
//
//   - New compiles one configuration — model × hardware × scheduler ×
//     sparsity × quantization, expressed as functional options — resolving
//     and validating every name exactly once.
//   - Engine.Simulate runs one end-to-end lockstep inference simulation
//     and reports throughput, the execution-time breakdown, and the
//     memory trajectory — the unit of the paper's system evaluation.
//   - Engine.Serve runs a continuous-batching serving simulation over an
//     arrival trace and reports TTFT/TPOT/E2E latency, throughput, and
//     goodput — the multi-request counterpart of Simulate. Engine.ServeMany
//     runs the cells of a load sweep concurrently on a bounded worker
//     pool with per-cell results bit-identical to serial Serve calls;
//     the serving loop itself is allocation-free in steady state, with
//     the human-readable event log opt-in via WithEventLog.
//   - Engine.EvaluatePolicy runs a sparse-attention policy against a
//     calibrated synthetic attention process and reports attention-mass
//     recall and Spearman correlation — the unit of the paper's accuracy
//     evaluation.
//   - Experiments/RunExperiment regenerate every table and figure of the
//     paper's evaluation section.
//
// All three run methods take a context.Context and stream progress to an
// optional Observer (WithObserver). The scheduler, attention-policy,
// model, and hardware-profile name spaces are open registries: scenarios
// beyond the paper's evaluation grid plug in through
// sched.Register, attention.Register, model.Register, and
// memsim.RegisterProfile without touching the engine.
//
// The free functions Simulate, Serve, EvaluatePolicy, and NewPolicy are
// retained as deprecated one-shot shims over Engine with bit-identical
// results.
//
// See DESIGN.md for the system inventory, the hardware-gate
// substitutions, and the public API contract (§7), and EXPERIMENTS.md for
// paper-vs-measured results.
package alisa

import (
	"context"

	"repro/internal/attention"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sched"
)

// Options configures one simulated inference run.
//
// Deprecated: Options is the one-shot configuration for the Simulate
// shim. New code should compile an Engine once with New and functional
// options, then call Engine.Simulate per workload shape.
type Options struct {
	// Model is a catalog name: opt-6.7b, opt-13b, opt-30b, llama-7b,
	// llama-13b, llama-33b, pythia-6.9b, pythia-12b.
	Model string
	// Profile is the simulated hardware: V100-16GB, V100-32GB, H100-80GB.
	// Empty selects the paper's pairing for the model scale.
	Profile string
	// Scheduler is the KV placement policy: alisa, flexgen, vllm,
	// deepspeed-zero, hf-accelerate, gpu-only, no-cache.
	Scheduler string

	Batch  int
	Input  int
	Output int

	// KVSparsity ∈ [0, 1) is SWA's skipped-token fraction (paper headline
	// setting: 0.8). KVBits is the KV storage precision, 16 or 8.
	KVSparsity float64
	KVBits     int
}

// Result is the outcome of a simulation; see core.Result for field
// documentation.
type Result = core.Result

// Simulate runs one end-to-end inference simulation.
//
// Deprecated: Simulate compiles a throwaway Engine per call. New code
// should call New once and Engine.Simulate per shape; results for
// accepted configurations are bit-identical. One deliberate behaviour
// change rides along: KVBits is validated up front to {8, 16}, so the
// INT4 setting the old path let through is now rejected (INT4 remains an
// internal extension; see the extension-int4 experiment).
func Simulate(opts Options) (*Result, error) {
	e, err := New(opts.Model,
		maybeProfile(opts.Profile),
		WithScheduler(opts.Scheduler),
		WithKVSparsity(opts.KVSparsity),
		WithKVBits(opts.KVBits),
	)
	if err != nil {
		return nil, err
	}
	return e.Simulate(context.Background(), Shape{Batch: opts.Batch, Input: opts.Input, Output: opts.Output})
}

// maybeProfile returns WithProfile(name), or a no-op for the empty name
// (the paper-pairing default) so the shims can pass legacy zero values
// through unchanged.
func maybeProfile(name string) Option {
	if name == "" {
		return func(*Engine) error { return nil }
	}
	return WithProfile(name)
}

// Policy is a sparse-attention token-selection policy (dense, local,
// strided, swa, h2o, or anything added through attention.Register).
type Policy = attention.Policy

// NewPolicy constructs a policy by registered name at the given caching
// ratio (1 − KV sparsity) for a model with the given layer count.
func NewPolicy(name string, cachingRatio float64, layers int) (Policy, error) {
	return attention.ByName(name, cachingRatio, layers)
}

// PolicyReport summarises an accuracy-side evaluation of a policy.
type PolicyReport struct {
	Policy     string
	KVSparsity float64
	// MeanRecall is the average dense-attention mass the retained token
	// sets captured; Spearman is the rank correlation of the policy's
	// score distribution against dense attention (paper Fig. 4's ρ).
	//
	// For the dense policy Spearman is identically 1, by definition
	// rather than by measurement: dense attention is the reference
	// distribution, and the rank correlation of a distribution with
	// itself is exactly 1 (identical ranks), so no numerical estimate is
	// run for it.
	MeanRecall float64
	Spearman   float64
}

// EvaluatePolicy runs the named policy at the given KV sparsity against an
// attention process calibrated to the named model, for `steps` decode
// steps.
//
// Deprecated: EvaluatePolicy compiles a throwaway Engine per call. New
// code should call New(model, WithKVSparsity(s), WithSeed(seed)) once and
// Engine.EvaluatePolicy per policy; the results are bit-identical.
func EvaluatePolicy(modelName, policyName string, kvSparsity float64, steps int, seed int64) (*PolicyReport, error) {
	// Steps are validated before any spec or policy construction, here
	// and in Engine.EvaluatePolicy.
	if steps <= 0 {
		return nil, &ConfigError{Field: "Steps", Value: steps, Reason: "must be positive"}
	}
	e, err := New(modelName, WithKVSparsity(kvSparsity), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return e.EvaluatePolicy(context.Background(), policyName, steps)
}

// Experiment identifies one reproducible table or figure.
type Experiment = experiments.Runner

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by id ("fig9", "table1", ...) and
// returns its rendered report.
func RunExperiment(id string) (string, error) {
	r, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := r.Run()
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// Models lists the built-in model catalog names. Models added through
// model.Register resolve by name in New but are not listed here.
func Models() []string { return model.Names() }

// Schedulers lists the paper's scheduler evaluation set in evaluation
// order. Schedulers added through sched.Register resolve by name in
// WithScheduler but are not listed here.
func Schedulers() []string { return sched.Names() }
