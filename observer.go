package alisa

import "repro/internal/events"

// Observer receives streaming run events — decode steps, request
// admissions, preemptions, and completions — as a simulation unfolds,
// instead of only the final report. Attach one to an Engine with
// WithObserver; it then sees events from both Simulate (step events) and
// Serve (all four kinds), delivered synchronously and in deterministic
// order from the single-goroutine simulation loops. All event times are
// simulated seconds, not wall time.
//
// Implement the interface directly, or use ObserverFuncs to subscribe to
// a subset of events.
type Observer = events.Observer

// StepEvent reports one completed decode step (Simulate) or one
// continuous-batching decode iteration (Serve).
type StepEvent = events.Step

// AdmissionEvent reports a request joining the decode batch (Serve).
type AdmissionEvent = events.Admission

// FirstTokenEvent reports a request producing its first output token —
// the end of prefill after its (final) admission (Serve and Session).
type FirstTokenEvent = events.FirstToken

// TokenEvent reports one generated output token of one request, emitted
// once per active sequence per decode iteration (Serve and Session).
// Leave the callback nil unless you need token-level streaming; a nil
// subscriber costs nothing.
type TokenEvent = events.Token

// PreemptionEvent reports a sequence losing its KV under memory pressure
// (Serve).
type PreemptionEvent = events.Preemption

// CompletionEvent reports a request finishing its final decode step
// (Serve).
type CompletionEvent = events.Completion

// ObserverFuncs adapts a set of optional callbacks to Observer; nil
// fields ignore their events.
type ObserverFuncs = events.Funcs

// MultiObserver fans every event out to each observer in order; nil
// entries are skipped.
func MultiObserver(obs ...Observer) Observer { return events.Multi(obs...) }

// SynchronizedObserver wraps an observer so callbacks arriving from
// several goroutines — one observer shared across the concurrent cells
// of ServeMany or a `-parallel` sweep — are serialized through one
// mutex; the wrapped observer then needs no internal locking. ServeMany
// applies this wrapping to the engine's observer automatically; use it
// directly when sharing one observer across engines run concurrently.
// A nil observer wraps to nil.
func SynchronizedObserver(o Observer) Observer { return events.Synchronized(o) }
