package alisa

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestServeManyMatchesSerialServe pins the parallel runner's contract:
// results land at their trace's index and are bit-identical to calling
// Serve once per trace serially — event logs included.
func TestServeManyMatchesSerialServe(t *testing.T) {
	eng, err := New("opt-6.7b",
		WithKVSparsity(0.8), WithKVBits(8), WithMaxBatch(8), WithEventLog(true))
	if err != nil {
		t.Fatal(err)
	}
	traces := []TraceWorkload{
		PoissonTrace(12, 1, 3),
		PoissonTrace(12, 3, 3),
		PoissonTrace(12, 6, 3),
		UniformTrace(6, 0.25, 96, 48),
	}
	ctx := context.Background()

	want := make([]*ServeResult, len(traces))
	for i, tr := range traces {
		if want[i], err = eng.Serve(ctx, tr); err != nil {
			t.Fatalf("serial cell %d: %v", i, err)
		}
	}

	// Several rounds: completion order varies, results must not.
	for round := 0; round < 3; round++ {
		got, err := eng.ServeMany(ctx, traces)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range traces {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d cell %d diverged from serial Serve", round, i)
			}
			if got[i].RenderEventLog() != want[i].RenderEventLog() {
				t.Fatalf("round %d cell %d event log diverged", round, i)
			}
		}
	}
}

// TestServeManyValidation pins the up-front trace checks.
func TestServeManyValidation(t *testing.T) {
	eng, err := New("opt-6.7b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var cfgErr *ConfigError
	if _, err := eng.ServeMany(ctx, nil); !errors.As(err, &cfgErr) || cfgErr.Field != "Trace" {
		t.Fatalf("empty trace list: err = %v", err)
	}
	if _, err := eng.ServeMany(ctx, []TraceWorkload{PoissonTrace(4, 1, 1), nil}); !errors.As(err, &cfgErr) || cfgErr.Field != "Trace" {
		t.Fatalf("nil cell trace: err = %v", err)
	}
}

// TestServeManyCancellation cancels up front: no cell may start, and the
// context error must surface.
func TestServeManyCancellation(t *testing.T) {
	eng, err := New("opt-6.7b")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.ServeMany(ctx, []TraceWorkload{PoissonTrace(4, 1, 1), PoissonTrace(4, 2, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("cell %d ran despite pre-cancelled context", i)
		}
	}
}

// countingObserver counts completions without internal locking; ServeMany
// must serialize delivery so this stays race-free under -race.
type countingObserver struct{ completions int }

func (c *countingObserver) OnStep(StepEvent)             {}
func (c *countingObserver) OnAdmission(AdmissionEvent)   {}
func (c *countingObserver) OnFirstToken(FirstTokenEvent) {}
func (c *countingObserver) OnToken(TokenEvent)           {}
func (c *countingObserver) OnPreemption(PreemptionEvent) {}
func (c *countingObserver) OnCompletion(CompletionEvent) { c.completions++ }

// TestServeManyObserverSerialized checks every cell's events reach the
// shared observer exactly once, with delivery serialized by ServeMany.
func TestServeManyObserverSerialized(t *testing.T) {
	obs := &countingObserver{}
	eng, err := New("opt-6.7b", WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	traces := []TraceWorkload{
		PoissonTrace(8, 2, 1), PoissonTrace(8, 4, 2), PoissonTrace(8, 6, 3),
	}
	if _, err := eng.ServeMany(context.Background(), traces); err != nil {
		t.Fatal(err)
	}
	if want := 3 * 8; obs.completions != want {
		t.Fatalf("shared observer saw %d completions, want %d", obs.completions, want)
	}
}

// TestSynchronizedObserverShared exercises the public wrapper across
// engines run concurrently by hand.
func TestSynchronizedObserverShared(t *testing.T) {
	obs := &countingObserver{}
	shared := SynchronizedObserver(obs)
	var wg sync.WaitGroup
	for _, name := range []string{"alisa", "vllm"} {
		opts := []Option{WithScheduler(name), WithObserver(shared)}
		if name == "alisa" {
			opts = append(opts, WithKVSparsity(0.8), WithKVBits(8))
		}
		eng, err := New("opt-6.7b", opts...)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Serve(context.Background(), PoissonTrace(6, 2, 9)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if want := 2 * 6; obs.completions != want {
		t.Fatalf("shared observer saw %d completions, want %d", obs.completions, want)
	}
	if SynchronizedObserver(nil) != nil {
		t.Fatal("nil observer must wrap to nil")
	}
}

// TestWithEventLog pins the public capture switch: off by default, on by
// option, byte-stable across runs.
func TestWithEventLog(t *testing.T) {
	trace := PoissonTrace(10, 3, 5)
	off, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := off.Serve(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventLog) != 0 || res.RenderEventLog() != "" {
		t.Fatalf("default engine captured %d events; render %q", len(res.EventLog), res.RenderEventLog())
	}

	on, err := New("opt-6.7b", WithKVSparsity(0.8), WithKVBits(8), WithEventLog(true))
	if err != nil {
		t.Fatal(err)
	}
	first, err := on.Serve(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.EventLog) == 0 {
		t.Fatal("WithEventLog(true) captured no events")
	}
	second, err := on.Serve(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if first.RenderEventLog() != second.RenderEventLog() {
		t.Fatal("captured event log not byte-stable across runs")
	}
}
