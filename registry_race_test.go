package alisa

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/attention"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
)

// TestRegistryConcurrency hammers concurrent Register/lookup/list on all
// four open registries; the race detector (CI runs the suite with -race)
// is the assertion. Registered names are test-scoped and never collide
// with built-ins, so the shared process state stays inert for other
// tests.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines = 16
	const iters = 200

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			schedName := fmt.Sprintf("race-sched-%d", g%4)
			policyName := fmt.Sprintf("race-policy-%d", g%4)
			modelName := fmt.Sprintf("race-model-%d", g%4)
			profName := fmt.Sprintf("race-profile-%d", g%4)
			for i := 0; i < iters; i++ {
				// sched: register, resolve custom and built-in, list.
				if err := sched.Register(schedName, func() sched.Scheduler { return sched.NewGPUOnly() }); err != nil {
					t.Error(err)
					return
				}
				if _, err := sched.ByName(schedName); err != nil {
					t.Error(err)
					return
				}
				if _, err := sched.FactoryByName("alisa"); err != nil {
					t.Error(err)
					return
				}
				sched.Registered()

				// attention
				if err := attention.Register(policyName, func(r float64, _ int) (attention.Policy, error) {
					return attention.NewLocal(r), nil
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := attention.ByName(policyName, 0.5, 2); err != nil {
					t.Error(err)
					return
				}
				if _, err := attention.ByName("swa", 0.5, 2); err != nil {
					t.Error(err)
					return
				}
				attention.Registered()

				// model
				if err := model.Register(model.Config{
					Name: modelName, Family: "race",
					Layers: 4, Hidden: 64, Heads: 4, FFN: 256, Vocab: 1000, MaxSeq: 512,
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := model.ByName(modelName); err != nil {
					t.Error(err)
					return
				}
				if _, err := model.ByName("opt-6.7b"); err != nil {
					t.Error(err)
					return
				}
				model.Registered()

				// memsim
				prof := memsim.V100_16G()
				prof.Name = profName
				if err := memsim.RegisterProfile(prof); err != nil {
					t.Error(err)
					return
				}
				if _, err := memsim.ProfileByName(profName); err != nil {
					t.Error(err)
					return
				}
				if _, err := memsim.ProfileByName("V100-32GB"); err != nil {
					t.Error(err)
					return
				}
				memsim.ProfileNames()
			}
		}(g)
	}
	wg.Wait()
}

// TestRegistryGuards pins the registries' rejection rules: empty names,
// nil factories, invalid shapes, and built-in replacement.
func TestRegistryGuards(t *testing.T) {
	if err := sched.Register("", func() sched.Scheduler { return sched.NewGPUOnly() }); err == nil {
		t.Error("sched: empty name accepted")
	}
	if err := sched.Register("x", nil); err == nil {
		t.Error("sched: nil factory accepted")
	}
	if err := sched.Register("alisa", func() sched.Scheduler { return sched.NewGPUOnly() }); err == nil {
		t.Error("sched: built-in replacement accepted")
	}
	if err := attention.Register("", nil); err == nil {
		t.Error("attention: empty name accepted")
	}
	if err := attention.Register("swa", func(r float64, l int) (attention.Policy, error) {
		return attention.NewLocal(r), nil
	}); err == nil {
		t.Error("attention: built-in replacement accepted")
	}
	if err := model.Register(model.Config{Name: "opt-6.7b", Layers: 1, Hidden: 4, Heads: 2, FFN: 4, Vocab: 4, MaxSeq: 4}); err == nil {
		t.Error("model: built-in replacement accepted")
	}
	if err := model.Register(model.Config{Name: "bad-shape", Layers: 0, Hidden: 4, Heads: 2, FFN: 4, Vocab: 4, MaxSeq: 4}); err == nil {
		t.Error("model: zero layers accepted")
	}
	prof := memsim.V100_16G()
	if err := memsim.RegisterProfile(prof); err == nil {
		t.Error("memsim: built-in replacement accepted")
	}
	prof.Name = "negative-hbm"
	prof.HBMBandwidth = -1
	if err := memsim.RegisterProfile(prof); err == nil {
		t.Error("memsim: negative bandwidth accepted")
	}
}
