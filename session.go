package alisa

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ErrSessionClosed reports a transition attempted on a Session after
// Close: Push, Advance, Fork, and Subscribe all fail with it once the
// session has begun (or finished) its graceful drain. Callers that race
// submissions against shutdown — a serving gateway draining on SIGTERM —
// test for it with errors.Is and translate it into their own
// "unavailable, stop sending" signal rather than a hard failure.
var ErrSessionClosed = errors.New("alisa: session closed")

// WindowSnapshot is one point-in-time digest of a session's rolling
// completion window: TTFT/TPOT/E2E percentiles, windowed throughput and
// goodput, and SLO attainment over the last-N completions. See
// Session.Snapshot.
type WindowSnapshot = metrics.WindowSnapshot

// Session is an interactive, push-based serving simulation: where Serve
// replays a pre-materialized trace and reports only at the end, a
// Session accepts requests at any simulated time, streams per-request
// lifecycle events (admission, first token, per-token, preemption,
// completion) to the engine's Observer and any Subscribe'd observers,
// and exposes online windowed metrics between turns. It is the public
// face of the step-driven serve.Loop core — Engine.Serve itself is a
// thin replay adapter over the same core.
//
// The simulation owns a virtual clock, so the caller drives it
// explicitly: Push requests (future arrivals included), then Advance
// turn by turn — or Close, which gracefully drains everything still in
// flight and returns the final ServeResult. Pushing from an observer
// callback during Advance is supported; that is how closed-loop clients
// issue their next request the moment the previous one completes (see
// ClosedLoop).
//
// A Session is single-goroutine, like the simulation it drives: Push,
// Advance, Snapshot, and Close must not be called concurrently. A
// Session fed a trace's arrivals before its first Advance reproduces
// Engine.Serve on that trace bit for bit (metrics, event stream, and —
// with the event log on — the captured log), which the equivalence
// suite pins.
type Session struct {
	eng    *Engine
	ctx    context.Context
	loop   *serve.Loop
	window *metrics.Window
	subs   []Observer
	closed bool
	result *ServeResult
	err    error
}

// Open begins a streaming serving session against the compiled
// configuration. The session starts idle at simulated time zero with no
// requests; feed it with Push and drive it with Advance or Close.
// Cancelling ctx mid-session releases all in-flight KV on the next
// transition and latches ctx.Err(), mirroring Serve's cancellation
// contract.
func (e *Engine) Open(ctx context.Context) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{
		eng:    e,
		ctx:    ctx,
		window: metrics.NewWindow(e.metricsWindow),
	}
	loop, err := serve.NewLoop(e.serveConfig(nil, sessionTap{s}))
	if err != nil {
		return nil, err
	}
	s.loop = loop
	return s, nil
}

// Push injects one request onto the session's simulated timeline. The
// arrival may lie in the future — the loop jumps the clock to it when
// idle — or at/before the current clock, making the request immediately
// due; equal arrivals keep push order (FCFS). Request IDs must be
// unique within the session and lengths positive and within the model's
// sequence budget. Pushing on a closed or failed session is an error.
func (s *Session) Push(req Request) error {
	if s.closed {
		return ErrSessionClosed
	}
	return s.loop.Inject(req)
}

// Advance runs one event-loop turn — admission, one fused decode
// iteration over the active batch, completions — and reports whether
// any work was done. false with a nil error means the session is idle:
// everything pushed so far has completed, and the session is waiting
// for more Push calls (or Close). Errors (an unservable request,
// context cancellation) are latched: the session is failed and Close
// reports the outcome.
func (s *Session) Advance() (bool, error) {
	if s.closed {
		return false, ErrSessionClosed
	}
	return s.loop.Advance(s.ctx)
}

// Clock returns the session's current simulated time in seconds.
func (s *Session) Clock() float64 { return s.loop.Clock() }

// Pending returns the number of pushed requests waiting for admission.
func (s *Session) Pending() int { return s.loop.Pending() }

// InFlight returns the current decode-batch occupancy.
func (s *Session) InFlight() int { return s.loop.Active() }

// NextArrival reports the earliest queued arrival time, in simulated
// seconds, and whether any request is waiting for admission. A pacing
// layer mapping simulated time onto a wall clock (the serving gateway's
// time-dilation bridge) peeks at it to know how long the next Advance
// would jump while the batch is empty, and sleeps the dilated wall
// interval before advancing instead of after.
func (s *Session) NextArrival() (float64, bool) { return s.loop.NextArrival() }

// Snapshot digests the rolling completion window — TTFT/TPOT/E2E
// percentiles, windowed throughput/goodput, and SLO attainment over the
// most recent completions (window size set by WithMetricsWindow) — the
// online view a monitoring loop polls between turns, long before Close
// produces the final ServeResult. The zero-value snapshot (Count 0)
// means no request has completed yet.
func (s *Session) Snapshot() WindowSnapshot { return s.window.Snapshot() }

// Fork branches the session into an independent continuation: the
// returned session resumes from this one's exact current state —
// simulated clock, wait queue, in-flight batch with each sequence's
// scheduler state, per-request records or streaming digests, and the
// rolling metrics window — and the two sessions then advance separately,
// each free to Push a different future. A fork driven through the same
// Push/Advance sequence as the original produces bit-identical results
// (the loop-level determinism contract, pinned by test); diverging them
// is the point — what-if admission studies, speculative load probes, or
// A/B-ing a traffic spike against a baseline from one warmed-up state.
//
// The engine's compiled Observer is carried over (the fork's events flow
// to it too); Subscribe'd observers are not — subscribers belong to one
// session's event stream, so attach fresh ones to the fork as needed.
// Forking a closed or failed session is an error.
func (s *Session) Fork() (*Session, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	f := &Session{
		eng:    s.eng,
		ctx:    s.ctx,
		window: s.window.Clone(),
	}
	loop, err := s.loop.Fork(sessionTap{f})
	if err != nil {
		return nil, err
	}
	f.loop = loop
	return f, nil
}

// Subscribe attaches an additional streaming observer for the rest of
// the session, alongside the engine's compiled Observer. Events are
// delivered to the engine's observer first, then to subscribers in
// Subscribe order, inline on the simulation loop. Subscribing mid-
// session is allowed; the new observer sees events from now on.
func (s *Session) Subscribe(obs Observer) error {
	if obs == nil {
		return &ConfigError{Field: "Observer", Value: nil, Reason: "observer must be non-nil"}
	}
	if s.closed {
		return ErrSessionClosed
	}
	s.subs = append(s.subs, obs)
	return nil
}

// Close gracefully drains the session — no further pushes are accepted,
// every pending and in-flight request runs to completion — verifies the
// KV accounting returned exactly to the static reservations, and
// returns the final ServeResult over every request the session saw, in
// push order. If the session's context was cancelled, the partial
// result over the requests that completed is returned alongside
// ctx.Err(), exactly as Engine.Serve reports cancellation; other fatal
// errors return a nil result. Close is idempotent: later calls return
// the same outcome.
func (s *Session) Close() (*ServeResult, error) {
	if s.closed {
		return s.result, s.err
	}
	s.closed = true
	if err := s.loop.Drain(s.ctx); err != nil {
		if serve.IsCancellation(err) {
			s.result, s.err = s.loop.Finalize(), err
		} else {
			s.result, s.err = nil, err
		}
		return s.result, s.err
	}
	s.result = s.loop.Finalize()
	return s.result, nil
}

// sessionTap is the session's internal observer: it feeds the rolling
// metrics window from completions and fans every event out to the
// engine's observer and the session's subscribers.
type sessionTap struct{ s *Session }

func (t sessionTap) OnStep(e StepEvent) {
	if o := t.s.eng.observer; o != nil {
		o.OnStep(e)
	}
	for _, o := range t.s.subs {
		o.OnStep(e)
	}
}

func (t sessionTap) OnAdmission(e AdmissionEvent) {
	if e.PrefixProbed {
		t.s.window.ObservePrefix(e.CachedTokens, e.SharedBytes)
	}
	if o := t.s.eng.observer; o != nil {
		o.OnAdmission(e)
	}
	for _, o := range t.s.subs {
		o.OnAdmission(e)
	}
}

func (t sessionTap) OnFirstToken(e FirstTokenEvent) {
	if o := t.s.eng.observer; o != nil {
		o.OnFirstToken(e)
	}
	for _, o := range t.s.subs {
		o.OnFirstToken(e)
	}
}

func (t sessionTap) OnToken(e TokenEvent) {
	if o := t.s.eng.observer; o != nil {
		o.OnToken(e)
	}
	for _, o := range t.s.subs {
		o.OnToken(e)
	}
}

func (t sessionTap) OnPreemption(e PreemptionEvent) {
	if o := t.s.eng.observer; o != nil {
		o.OnPreemption(e)
	}
	for _, o := range t.s.subs {
		o.OnPreemption(e)
	}
}

func (t sessionTap) OnCompletion(e CompletionEvent) {
	t.s.window.Observe(e.Clock, e.TTFT, e.TPOT, e.E2E, e.Output, e.SLOMet)
	if o := t.s.eng.observer; o != nil {
		o.OnCompletion(e)
	}
	for _, o := range t.s.subs {
		o.OnCompletion(e)
	}
}

// ClosedLoop describes a closed-loop serving workload: Clients
// concurrent clients, each issuing one request, waiting for its
// completion, thinking, then issuing the next — so the offered load
// adapts to the system's speed instead of following a fixed timeline.
// This regime cannot be expressed as a static TraceWorkload at all:
// every arrival after the first depends on a completion time the
// simulation itself produces.
type ClosedLoop struct {
	// Clients is the number of concurrent closed-loop clients — the
	// concurrency axis of a latency-vs-concurrency study.
	Clients int
	// Requests is the total request budget across all clients; the run
	// ends when every issued request has completed.
	Requests int
	// ThinkTime is the mean think time in seconds between a client's
	// completion and its next request (exponentially distributed per
	// client, and also staggering each client's first arrival). 0 means
	// clients re-issue immediately.
	ThinkTime float64
	// Seed drives the per-client shape and think-time streams; shapes
	// come from the same heterogeneous mixture as PoissonTrace.
	Seed int64
}

// validate reports the first invalid ClosedLoop field.
func (cl ClosedLoop) validate() error {
	switch {
	case cl.Clients <= 0:
		return &ConfigError{Field: "Clients", Value: cl.Clients, Reason: "must be positive"}
	case cl.Requests <= 0:
		return &ConfigError{Field: "Requests", Value: cl.Requests, Reason: "must be positive"}
	case cl.ThinkTime < 0:
		return &ConfigError{Field: "ThinkTime", Value: cl.ThinkTime, Reason: "must be non-negative seconds"}
	}
	return nil
}

// ServeClosedLoop runs a closed-loop serving simulation against the
// compiled configuration, built entirely on the Session API: each
// client's next request is pushed from the completion event of its
// previous one. The result is deterministic in the ClosedLoop seed —
// per-client RNG streams and a single-goroutine simulation — and is the
// same ServeResult shape Serve produces, so the two load regimes
// compare directly. Cancelling ctx returns partial metrics alongside
// ctx.Err(), as in Serve.
func (e *Engine) ServeClosedLoop(ctx context.Context, cl ClosedLoop) (*ServeResult, error) {
	if err := cl.validate(); err != nil {
		return nil, err
	}
	s, err := e.Open(ctx)
	if err != nil {
		return nil, err
	}

	rngs := make([]*rand.Rand, cl.Clients)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(cl.Seed + int64(i)*1_000_003))
	}
	clientOf := make([]int, 0, cl.Requests)
	issued := 0
	var pushErr error

	// issue pushes client c's next request: think, then sample a shape
	// from the client's own stream, arriving think seconds after now.
	issue := func(c int, now float64) {
		if pushErr != nil || issued >= cl.Requests {
			return
		}
		rng := rngs[c]
		wait := 0.0
		if cl.ThinkTime > 0 {
			wait = rng.ExpFloat64() * cl.ThinkTime
		}
		input, output := workload.SampleShape(rng)
		id := issued
		issued++
		clientOf = append(clientOf, c)
		if err := s.Push(Request{ID: id, Arrival: now + wait, Input: input, Output: output}); err != nil {
			pushErr = err
		}
	}

	if err := s.Subscribe(ObserverFuncs{Completion: func(ev CompletionEvent) {
		// The completing request's client closes its loop: think, then
		// issue the next request at the completion clock plus think.
		if ev.Request >= 0 && ev.Request < len(clientOf) {
			issue(clientOf[ev.Request], ev.Clock)
		}
	}}); err != nil {
		return nil, err
	}

	for c := 0; c < cl.Clients; c++ {
		issue(c, 0)
	}

	for pushErr == nil {
		progressed, err := s.Advance()
		if err != nil || !progressed {
			break // latched errors surface from Close
		}
	}
	res, err := s.Close()
	if err == nil && pushErr != nil {
		return res, pushErr
	}
	return res, err
}

// ServeScripted runs a closed-loop serving simulation over explicit
// client scripts: each client issues its script's next request when the
// previous one completes, with the script's own think time — the runner
// behind the conversation and agent prefix-sharing workloads
// (NewConversationClients, NewAgentClients), and the closed-loop
// counterpart of replaying a token-carrying trace. Requests carry the
// scripts' token IDs, so with WithPrefixCache enabled the serving loop
// shares block-aligned prompt prefixes across them. The run is
// deterministic for deterministic scripts: a single-goroutine
// simulation issues every request, and request IDs are assigned in
// issue order. Cancelling ctx returns partial metrics alongside
// ctx.Err(), as in Serve.
func (e *Engine) ServeScripted(ctx context.Context, clients []ClosedClient) (*ServeResult, error) {
	if len(clients) == 0 {
		return nil, &ConfigError{Field: "Clients", Value: len(clients), Reason: "at least one scripted client required"}
	}
	for i, c := range clients {
		if c == nil {
			return nil, &ConfigError{Field: "Clients", Value: i, Reason: "nil scripted client"}
		}
	}
	s, err := e.Open(ctx)
	if err != nil {
		return nil, err
	}

	clientOf := make([]int, 0, len(clients))
	issued := 0
	var pushErr error

	// issue pushes client c's next scripted request, arriving its think
	// time after now; an exhausted script simply stops issuing.
	issue := func(c int, now float64) {
		if pushErr != nil {
			return
		}
		tokens, output, think, ok := clients[c].Next()
		if !ok {
			return
		}
		id := issued
		issued++
		clientOf = append(clientOf, c)
		if err := s.Push(Request{
			ID: id, Arrival: now + think,
			Input: len(tokens), Output: output, Tokens: tokens,
		}); err != nil {
			pushErr = err
		}
	}

	if err := s.Subscribe(ObserverFuncs{Completion: func(ev CompletionEvent) {
		if ev.Request >= 0 && ev.Request < len(clientOf) {
			issue(clientOf[ev.Request], ev.Clock)
		}
	}}); err != nil {
		return nil, err
	}

	for c := range clients {
		issue(c, 0)
	}

	for pushErr == nil {
		progressed, err := s.Advance()
		if err != nil || !progressed {
			break // latched errors surface from Close
		}
	}
	res, err := s.Close()
	if err == nil && pushErr != nil {
		return res, pushErr
	}
	return res, err
}
